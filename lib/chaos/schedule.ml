(** A chaos schedule: one self-contained, replayable trial.

    A schedule bundles everything a run needs to be reproduced
    bit-for-bit: the seed (workload randomness), the deployment
    configuration knobs the chaos tree exposes (reliable layer,
    tenancy), the background workload shape, the oracle tolerance it
    was judged against, and the fault list itself.  The chaos search
    generates these ({!Gen}), the runner executes them, and the
    shrinker rewrites their fault lists — so the fault list, not a
    generator seed, is the source of truth.

    {2 Wire format}

    [print]/[parse] implement a line-based text format (the body of a
    repro file).  Floats are written as [%h] hex literals, so
    [parse (print t) = Ok t] holds {e exactly} — the round-trip is a
    qcheck property in [test/test_chaos.ml], and it is what makes a
    replayed repro bit-identical to the run that produced it. *)

open Scotch_faults

type workload = {
  duration : float;  (* seconds of background traffic *)
  base_rate : float; (* steady per-source launch rate, flows/s *)
  flash_multiplier : float;
      (* mid-run flash-crowd factor over the middle half of the
         window; 1.0 = flat load *)
  sources : int;     (* concurrent client sources *)
}

type tolerance = {
  base_loss : float;
      (* admitted-flow loss fraction allowed even with no faults *)
  exposure_loss : float;
      (* extra allowed loss per unit of severity-weighted exposure *)
  max_loss : float;  (* hard cap on the total allowance *)
}

type cfg = {
  reconcile : bool; (* installs through the reliable layer (PR 3) *)
  tenancy : bool;   (* two-tenant deployment with budgets (PR 8) *)
  tolerance : tolerance;
}

type t = {
  seed : int;
  cfg : cfg;
  workload : workload;
  faults : Fault.t list; (* sorted by Fault.compare *)
}

let make ~seed ~cfg ~workload faults =
  { seed; cfg; workload; faults = List.sort Fault.compare faults }

(** [with_faults t faults] — the shrinker's rewrite: same trial, a
    subset of the faults. *)
let with_faults t faults = { t with faults = List.sort Fault.compare faults }

let plan t = Plan.of_list t.faults

let equal a b = a = b

let default_tolerance =
  { base_loss = 0.02; exposure_loss = 0.80; max_loss = 0.60 }

let default_workload =
  { duration = 8.0; base_rate = 25.0; flash_multiplier = 3.0; sources = 3 }

let default_cfg =
  { reconcile = false; tenancy = false; tolerance = default_tolerance }

(* ------------------------------------------------------------------ *)
(* Wire format *)

let h = Printf.sprintf "%h"

let kind_tag = function
  | Fault.Vswitch_crash -> "crash"
  | Fault.Ofa_slowdown _ -> "slowdown"
  | Fault.Ofa_stall -> "stall"
  | Fault.Channel_delay _ -> "chan-delay"
  | Fault.Channel_drop _ -> "chan-drop"
  | Fault.Channel_dup _ -> "chan-dup"
  | Fault.Channel_reorder _ -> "chan-reorder"
  | Fault.Link_down _ -> "link-down"
  | Fault.Stats_outage -> "stats-outage"
  | Fault.Vswitch_degrade _ -> "degrade"
  | Fault.Controller_pause -> "pause"
  | Fault.Tenant_flood _ -> "flood"

let fault_line (f : Fault.t) =
  let base =
    Printf.sprintf "fault %s at %s dur %s target %d" (kind_tag f.Fault.kind)
      (h f.Fault.at) (h f.Fault.duration) f.Fault.target
  in
  match f.Fault.kind with
  | Fault.Vswitch_crash | Fault.Ofa_stall | Fault.Stats_outage | Fault.Controller_pause ->
    base
  | Fault.Ofa_slowdown v | Fault.Channel_delay v | Fault.Channel_drop v
  | Fault.Channel_dup v | Fault.Channel_reorder v | Fault.Vswitch_degrade v
  | Fault.Tenant_flood v ->
    Printf.sprintf "%s p %s" base (h v)
  | Fault.Link_down port -> Printf.sprintf "%s port %d" base port

let print t =
  let b = Buffer.create 512 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string b s; Buffer.add_char b '\n') fmt in
  line "scotch-chaos-schedule v1";
  line "seed %d" t.seed;
  line "cfg reconcile %b tenancy %b" t.cfg.reconcile t.cfg.tenancy;
  line "tolerance base %s exposure %s max %s" (h t.cfg.tolerance.base_loss)
    (h t.cfg.tolerance.exposure_loss) (h t.cfg.tolerance.max_loss);
  line "workload duration %s rate %s flash %s sources %d" (h t.workload.duration)
    (h t.workload.base_rate) (h t.workload.flash_multiplier) t.workload.sources;
  List.iter (fun f -> line "%s" (fault_line f)) t.faults;
  line "end";
  Buffer.contents b

(* ------------------------------------------------------------------ *)
(* Parsing *)

exception Bad of string

let fail fmt = Printf.ksprintf (fun s -> raise (Bad s)) fmt

let float_of s =
  match float_of_string_opt s with
  | Some v -> v
  | None -> fail "bad float %S" s

let int_of s =
  match int_of_string_opt s with Some v -> v | None -> fail "bad int %S" s

let bool_of s =
  match bool_of_string_opt s with Some v -> v | None -> fail "bad bool %S" s

(** Key-value tail of a line: [k1 v1 k2 v2 ...] -> lookup. *)
let kv words =
  let rec go = function
    | [] -> []
    | [ k ] -> fail "dangling key %S" k
    | k :: v :: rest -> (k, v) :: go rest
  in
  let pairs = go words in
  fun key ->
    match List.assoc_opt key pairs with
    | Some v -> v
    | None -> fail "missing field %S" key

let parse_fault words =
  match words with
  | tag :: rest ->
    let get = kv rest in
    let at = float_of (get "at") in
    let duration = float_of (get "dur") in
    let target = int_of (get "target") in
    let p () = float_of (get "p") in
    (match tag with
    | "crash" -> Fault.vswitch_crash ~at ~duration target
    | "slowdown" -> Fault.ofa_slowdown ~at ~duration ~factor:(p ()) target
    | "stall" -> Fault.ofa_stall ~at ~duration target
    | "chan-delay" -> Fault.channel_delay ~at ~duration ~extra:(p ()) target
    | "chan-drop" -> Fault.channel_drop ~at ~duration ~probability:(p ()) target
    | "chan-dup" -> Fault.channel_dup ~at ~duration ~probability:(p ()) target
    | "chan-reorder" -> Fault.channel_reorder ~at ~duration ~probability:(p ()) target
    | "link-down" -> Fault.link_down ~at ~duration ~port:(int_of (get "port")) target
    | "stats-outage" -> Fault.stats_outage ~at ~duration
    | "degrade" -> Fault.vswitch_degrade ~at ~duration ~peak:(p ()) target
    | "pause" -> Fault.controller_pause ~at ~duration
    | "flood" -> Fault.tenant_flood ~at ~duration ~rate:(p ()) target
    | _ -> fail "unknown fault kind %S" tag)
  | [] -> fail "empty fault line"

let words_of line =
  String.split_on_char ' ' line |> List.filter (fun s -> s <> "")

let parse_lines lines =
  match lines with
  | header :: rest when String.trim header = "scotch-chaos-schedule v1" ->
    let seed = ref None and cfg = ref None and tol = ref None and wl = ref None in
    let faults = ref [] and ended = ref false in
    List.iter
      (fun line ->
        if not !ended then
          match words_of line with
          | [] -> ()
          | [ "end" ] -> ended := true
          | "seed" :: [ v ] -> seed := Some (int_of v)
          | "cfg" :: rest ->
            let get = kv rest in
            cfg := Some (bool_of (get "reconcile"), bool_of (get "tenancy"))
          | "tolerance" :: rest ->
            let get = kv rest in
            tol :=
              Some
                { base_loss = float_of (get "base");
                  exposure_loss = float_of (get "exposure");
                  max_loss = float_of (get "max") }
          | "workload" :: rest ->
            let get = kv rest in
            wl :=
              Some
                { duration = float_of (get "duration");
                  base_rate = float_of (get "rate");
                  flash_multiplier = float_of (get "flash");
                  sources = int_of (get "sources") }
          | "fault" :: rest -> faults := parse_fault rest :: !faults
          | w :: _ -> fail "unknown line %S" w)
      rest;
    if not !ended then fail "missing \"end\" line";
    let req name = function Some v -> v | None -> fail "missing %S line" name in
    let reconcile, tenancy = req "cfg" !cfg in
    { seed = req "seed" !seed;
      cfg = { reconcile; tenancy; tolerance = req "tolerance" !tol };
      workload = req "workload" !wl;
      faults = List.sort Fault.compare (List.rev !faults) }
  | header :: _ -> fail "bad header %S" header
  | [] -> fail "empty schedule"

let parse s =
  match parse_lines (String.split_on_char '\n' s) with
  | t -> Ok t
  | exception Bad msg -> Error msg
  | exception Invalid_argument msg -> Error msg

let pp fmt t =
  Format.fprintf fmt "schedule[seed %d, %d faults, %.1f s%s%s]" t.seed
    (List.length t.faults) t.workload.duration
    (if t.cfg.reconcile then ", reconcile" else "")
    (if t.cfg.tenancy then ", tenancy" else "")
