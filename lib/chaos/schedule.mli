(** A chaos schedule: one self-contained, replayable trial — seed,
    deployment config, background workload, oracle tolerance and the
    fault list itself.  The fault list (not a generator seed) is the
    source of truth, which is what lets the shrinker rewrite it and
    the repro file replay it exactly. *)

type workload = {
  duration : float;  (** seconds of background traffic *)
  base_rate : float;  (** steady per-source launch rate, flows/s *)
  flash_multiplier : float;
      (** mid-run flash-crowd factor over the middle half of the
          window; 1.0 = flat load *)
  sources : int;  (** concurrent client sources *)
}

type tolerance = {
  base_loss : float;
      (** admitted-flow loss fraction allowed even with no faults *)
  exposure_loss : float;
      (** extra allowed loss per unit of severity-weighted exposure *)
  max_loss : float;  (** hard cap on the total allowance *)
}

type cfg = {
  reconcile : bool;  (** installs through the reliable layer (PR 3) *)
  tenancy : bool;  (** two-tenant deployment with budgets (PR 8) *)
  tolerance : tolerance;
}

type t = {
  seed : int;
  cfg : cfg;
  workload : workload;
  faults : Scotch_faults.Fault.t list;  (** sorted by [Fault.compare] *)
}

(** [make ~seed ~cfg ~workload faults] sorts [faults] into plan order. *)
val make : seed:int -> cfg:cfg -> workload:workload -> Scotch_faults.Fault.t list -> t

(** [with_faults t faults] — the shrinker's rewrite: same trial, a
    subset of the faults. *)
val with_faults : t -> Scotch_faults.Fault.t list -> t

(** The fault list as an injector plan. *)
val plan : t -> Scotch_faults.Plan.t

val equal : t -> t -> bool

val default_tolerance : tolerance
val default_workload : workload
val default_cfg : cfg

(** Wire tag of a fault kind (["crash"], ["chan-dup"], …). *)
val kind_tag : Scotch_faults.Fault.kind -> string

(** Line-based text serialization.  Floats are printed as [%h] hex
    literals, so [parse (print t) = Ok t] holds exactly. *)
val print : t -> string

(** Inverse of {!print}; faults are re-validated through the
    {!Scotch_faults.Fault} smart constructors, so a hand-edited file
    with nonsense parameters is rejected, not silently accepted. *)
val parse : string -> (t, string) result

val pp : Format.formatter -> t -> unit
