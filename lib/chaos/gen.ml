(** Seeded random fault-schedule generation.

    Each schedule index yields an independent, reproducible trial:
    the PRNG is derived from (seed, index) alone, so schedule 17 of
    seed 42 is the same schedule forever — on any machine, in any
    order, which is what lets a repro file name a trial by its
    schedule rather than by the search that found it.

    The generator covers the full {!Scotch_faults.Fault.kind}
    vocabulary (tenant floods only when the spec's deployment has
    tenancy on).  Two rules keep the trials meaningful rather than
    merely loud:

    - {e no overlapping same-category faults on one target} — the
      injector's idempotency rule unions overlapping identical faults,
      and overlapping same-kind-different-parameter faults would
      last-writer-win through the same setter; disjoint windows keep
      every fault's effect attributable.
    - {e fault windows end well before the workload does} — the oracle
      judges the {e recovered} system, so every window closes by 80 %
      of the workload and the runner extends the horizon past the
      last clearing. *)

open Scotch_faults
open Scotch_util

type spec = {
  vswitches : int array;  (* overlay pool dpids: crash/degrade/slowdown/stall *)
  phys : int array;       (* managed physical dpids: OFA + channel faults *)
  links : (int * int) array; (* (dpid, port) flappable data links *)
  tenants : int array;    (* flood targets; used only when cfg.tenancy *)
  flood_rate : float;     (* nominal tenant-flood intensity, flows/s *)
  min_faults : int;
  max_faults : int;
  cfg : Schedule.cfg;
  workload : Schedule.workload;
}

(** Golden-ratio mixing of (seed, index) into one splitmix seed. *)
let trial_seed ~seed ~index = seed + ((index + 1) * 0x9E3779B97F4A7C1)

type window = { w_target : int; w_tag : string; w_from : float; w_to : float }

let overlaps ws ~target ~tag ~from_ ~to_ =
  List.exists
    (fun w -> w.w_target = target && w.w_tag = tag && from_ < w.w_to && w.w_from < to_)
    ws

(** One candidate fault.  [rng] draws are unconditional per branch so
    the stream stays aligned whether or not the candidate is kept. *)
let candidate spec rng =
  let d = spec.workload.Schedule.duration in
  let at = 0.15 *. d +. Rng.float rng (0.55 *. d) in
  let dur = 0.3 +. Rng.float rng (Float.min 1.7 (0.25 *. d)) in
  (* clip the window inside 80% of the workload so recovery happens
     under load, not after it *)
  let dur = Float.min dur (Float.max 0.2 ((0.8 *. d) -. at)) in
  let vsw () = Rng.choice rng spec.vswitches in
  let any () =
    let n = Array.length spec.vswitches + Array.length spec.phys in
    let i = Rng.int rng n in
    if i < Array.length spec.vswitches then spec.vswitches.(i)
    else spec.phys.(i - Array.length spec.vswitches)
  in
  let kinds = if Array.length spec.links = 0 then 10 else 11 in
  let kinds = if spec.cfg.Schedule.tenancy && Array.length spec.tenants > 0 then kinds + 1 else kinds in
  match Rng.int rng kinds with
  | 0 -> Fault.vswitch_crash ~at ~duration:dur (vsw ())
  | 1 -> Fault.ofa_slowdown ~at ~duration:dur ~factor:(2.0 +. Rng.float rng 4.0) (any ())
  | 2 -> Fault.ofa_stall ~at ~duration:(Float.min dur 0.8) (any ())
  | 3 -> Fault.channel_delay ~at ~duration:dur ~extra:(0.002 +. Rng.float rng 0.018) (any ())
  | 4 -> Fault.channel_drop ~at ~duration:dur ~probability:(0.05 +. Rng.float rng 0.2) (any ())
  | 5 -> Fault.channel_dup ~at ~duration:dur ~probability:(0.1 +. Rng.float rng 0.4) (any ())
  | 6 ->
    Fault.channel_reorder ~at ~duration:dur ~probability:(0.1 +. Rng.float rng 0.4) (any ())
  | 7 -> Fault.stats_outage ~at ~duration:dur
  | 8 -> Fault.vswitch_degrade ~at ~duration:dur ~peak:(2.5 +. Rng.float rng 5.5) (vsw ())
  | 9 -> Fault.controller_pause ~at ~duration:(0.05 +. Rng.float rng 0.15)
  | 10 when Array.length spec.links > 0 ->
    let dpid, port = Rng.choice rng spec.links in
    Fault.link_down ~at ~duration:(Float.min dur 1.0) ~port dpid
  | _ ->
    let tenant = Rng.choice rng spec.tenants in
    Fault.tenant_flood ~at ~duration:dur
      ~rate:(spec.flood_rate *. (0.5 +. Rng.float rng 1.0))
      tenant

let generate spec ~seed ~index =
  if spec.min_faults < 1 || spec.max_faults < spec.min_faults then
    invalid_arg "Gen.generate: need 1 <= min_faults <= max_faults";
  if Array.length spec.vswitches = 0 || Array.length spec.phys = 0 then
    invalid_arg "Gen.generate: need vswitch and phys targets";
  let rng = Rng.create (trial_seed ~seed ~index) in
  let n = spec.min_faults + Rng.int rng (spec.max_faults - spec.min_faults + 1) in
  let rec fill tries windows acc =
    if List.length acc >= n || tries > 8 * n then acc
    else
      let f = candidate spec rng in
      let tag = Schedule.kind_tag f.Fault.kind in
      let from_ = f.Fault.at and to_ = Fault.ends_at f in
      if overlaps windows ~target:f.Fault.target ~tag ~from_ ~to_ then
        fill (tries + 1) windows acc
      else
        fill (tries + 1)
          ({ w_target = f.Fault.target; w_tag = tag; w_from = from_; w_to = to_ } :: windows)
          (f :: acc)
  in
  let faults = fill 0 [] [] in
  Schedule.make ~seed:(trial_seed ~seed ~index) ~cfg:spec.cfg ~workload:spec.workload faults
