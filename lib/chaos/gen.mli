(** Seeded random fault-schedule generation over the full
    {!Scotch_faults.Fault.kind} vocabulary.

    Deterministic per (seed, index): schedule [index] of a seed is the
    same schedule forever, independent of search order.  Same-category
    faults never overlap on one target (the injector's idempotency
    unions them and parameterized setters would last-writer-win), and
    every fault window closes by 80 % of the workload so the oracle
    judges a system that had to recover {e under} load. *)

type spec = {
  vswitches : int array;
      (** overlay pool dpids: crash/degrade/slowdown/stall targets *)
  phys : int array;  (** managed physical dpids: OFA + channel faults *)
  links : (int * int) array;  (** (dpid, port) flappable data links *)
  tenants : int array;  (** flood targets; used only when [cfg.tenancy] *)
  flood_rate : float;  (** nominal tenant-flood intensity, flows/s *)
  min_faults : int;
  max_faults : int;
  cfg : Schedule.cfg;
  workload : Schedule.workload;
}

(** Golden-ratio mixing of (seed, index) into one splitmix seed — also
    the generated schedule's own [seed]. *)
val trial_seed : seed:int -> index:int -> int

(** [generate spec ~seed ~index] — the [index]-th trial of [seed].
    Raises [Invalid_argument] on an empty target spec or a bad fault
    count range. *)
val generate : spec -> seed:int -> index:int -> Schedule.t
