(** The end-to-end safety oracles: one typed definition of "the
    control plane recovered".

    The runner distills a finished trial into an {!observation} —
    plain data, no live simulator handles — and [check] judges it.
    Scripted experiments (the resilience smoke) and searched trials
    (the chaos engine) both go through this module, so there is
    exactly one definition of healthy in the tree.

    Oracles, in severity order:
    - {!Verify_clean}: the post-recovery dataplane passes the PR 2/7
      invariant checker — no loops, blackholes, shadowing, group
      insanity or miss-coverage holes.
    - {!Reconcile_converged}: with the reliable layer on, intent and
      device state agree (no stranded intents, no resurrected rules)
      and nothing is still outstanding.
    - {!Bounded_loss}: admitted-flow delivery beats a floor that
      scales with the schedule's severity-weighted fault {!exposure} —
      faults may cost flows, but only in proportion to what was
      injected.
    - {!Breaker_liveness}: no pool member is still ejected (breaker
      [Open]/[Half_open]) once its fault has cleared and the settle
      window has passed — every ejection ends in readmission or an
      explicit demotion.
    - {!Tenant_isolation}: with tenancy on, the victim tenant sheds
      nothing — every shed flow belongs to the tenant that earned it.
    - {!Determinism}: the same schedule run twice produces
      bit-identical digests. *)

open Scotch_faults

type reconcile_obs = {
  converged : bool;
  outstanding : int; (* intent operations still in flight at run end *)
}

type breaker_obs = {
  dpid : int;
  state : string; (* "closed" | "open" | "half-open" | "none" *)
  demoted : bool; (* on the bench (backup) at run end: allowed to stay ejected *)
}

type observation = {
  launched : int;  (* admitted background flows *)
  delivered : int; (* of those, delivered end-to-end *)
  verify_errors : int;
  verify_reports : int; (* diagnostics incl. warnings, for context *)
  reconcile : reconcile_obs option;
  breakers : breaker_obs list;
  victim_sheds : int option; (* tenancy on: sheds charged to the victim *)
  digest : string; (* bit-identity fingerprint of the whole run *)
}

type oracle =
  | Verify_clean
  | Reconcile_converged
  | Bounded_loss
  | Breaker_liveness
  | Tenant_isolation
  | Determinism

type violation = { oracle : oracle; detail : string }

let oracle_name = function
  | Verify_clean -> "verify-clean"
  | Reconcile_converged -> "reconcile-converged"
  | Bounded_loss -> "bounded-loss"
  | Breaker_liveness -> "breaker-liveness"
  | Tenant_isolation -> "tenant-isolation"
  | Determinism -> "determinism"

let oracle_of_name = function
  | "verify-clean" -> Some Verify_clean
  | "reconcile-converged" -> Some Reconcile_converged
  | "bounded-loss" -> Some Bounded_loss
  | "breaker-liveness" -> Some Breaker_liveness
  | "tenant-isolation" -> Some Tenant_isolation
  | "determinism" -> Some Determinism
  | _ -> None

(* ------------------------------------------------------------------ *)
(* Exposure: how much failure a schedule injects, in loss-allowance
   units.  Per-kind severity weights scale each fault's share of the
   workload window; a vswitch crash additionally pays the fixed
   heartbeat-detection + rebalance window during which traffic is
   still hashed onto the corpse. *)

(** Simulation seconds between a crash and the last select group
    forgetting the corpse (heartbeat timeout + period + propagation) —
    the §5.6 budget the resilience tests assert. *)
let crash_recovery_window = 5.0

(* Calibration: a weight of w means "this fault may cost up to
   [exposure_loss * w] of the flows admitted during its window".  A
   full outage with no redundant path — an OFA stall or controller
   pause freezing flow setup on a physical switch every flow crosses —
   loses flows at the flash-crowd density (~2x the average admission
   rate), hence weights around 2.  A vswitch crash is cheap per second
   (the pool is redundant; only detection-window flows hashed to the
   corpse are lost) but pays the fixed {!crash_recovery_window}, so
   its weight stays low — low enough that a rebalance that never
   happens (losing the corpse's whole traffic share to the end of the
   run) still lands far above the allowance. *)
let kind_weight = function
  | Fault.Vswitch_crash -> 0.35
  | Fault.Ofa_stall -> 2.0
  | Fault.Link_down _ -> 1.5
  | Fault.Ofa_slowdown _ -> 0.6
  | Fault.Vswitch_degrade _ -> 0.6
  | Fault.Channel_drop _ -> 0.8
  | Fault.Channel_delay _ -> 0.2
  | Fault.Channel_dup _ -> 0.1
  | Fault.Channel_reorder _ -> 0.15
  | Fault.Controller_pause -> 2.0
  | Fault.Stats_outage -> 0.0
  | Fault.Tenant_flood _ -> 0.3

let exposure (s : Schedule.t) =
  let d = s.Schedule.workload.Schedule.duration in
  List.fold_left
    (fun acc (f : Fault.t) ->
      let window =
        match f.Fault.kind with
        | Fault.Vswitch_crash -> f.Fault.duration +. crash_recovery_window
        | _ -> f.Fault.duration
      in
      acc +. (kind_weight f.Fault.kind *. (Float.min window d /. d)))
    0.0 s.Schedule.faults

(** The delivery floor a trial must beat: loss up to
    [base + exposure_loss * exposure], capped at [max_loss]. *)
let allowed_loss (tol : Schedule.tolerance) ~exposure =
  Float.min tol.Schedule.max_loss
    (tol.Schedule.base_loss +. (tol.Schedule.exposure_loss *. exposure))

(* ------------------------------------------------------------------ *)

let v oracle fmt = Printf.ksprintf (fun detail -> { oracle; detail }) fmt

let check (s : Schedule.t) (o : observation) =
  let violations = ref [] in
  let push x = violations := x :: !violations in
  if o.verify_errors > 0 then
    push
      (v Verify_clean "%d invariant error(s) in the post-recovery dataplane"
         o.verify_errors);
  (match o.reconcile with
  | Some r when (not r.converged) || r.outstanding > 0 ->
    push
      (v Reconcile_converged "converged=%b with %d outstanding operation(s)" r.converged
         r.outstanding)
  | _ -> ());
  let exposure = exposure s in
  let allowed = allowed_loss s.Schedule.cfg.Schedule.tolerance ~exposure in
  if o.launched > 0 then begin
    let lost = float_of_int (o.launched - o.delivered) /. float_of_int o.launched in
    if lost > allowed then
      push
        (v Bounded_loss "lost %.1f%% of %d admitted flows (allowed %.1f%% at exposure %.2f)"
           (100.0 *. lost) o.launched (100.0 *. allowed) exposure)
  end;
  List.iter
    (fun b ->
      if b.state <> "closed" && b.state <> "none" && not b.demoted then
        push
          (v Breaker_liveness "member %d still %s at run end (never readmitted or demoted)"
             b.dpid b.state))
    o.breakers;
  (match o.victim_sheds with
  | Some n when n > 0 -> push (v Tenant_isolation "%d victim flow(s) shed" n)
  | _ -> ());
  List.rev !violations

(** Same-seed determinism: two runs of one schedule must agree
    bit-for-bit. *)
let check_determinism ~(first : observation) ~(second : observation) =
  if first.digest = second.digest then None
  else
    let short s = if String.length s > 12 then String.sub s 0 12 else s in
    Some
      (v Determinism "same schedule, different digests (%s vs %s)" (short first.digest)
         (short second.digest))

let pp_violation fmt { oracle; detail } =
  Format.fprintf fmt "%s: %s" (oracle_name oracle) detail
