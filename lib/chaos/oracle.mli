(** The end-to-end safety oracles: the one definition of "the control
    plane recovered", shared by scripted experiments and the chaos
    search. *)

type reconcile_obs = {
  converged : bool;
  outstanding : int;  (** intent operations still in flight at run end *)
}

type breaker_obs = {
  dpid : int;
  state : string;  (** "closed" | "open" | "half-open" | "none" *)
  demoted : bool;
      (** on the bench (backup) at run end: allowed to stay ejected *)
}

(** A finished trial, distilled to plain data. *)
type observation = {
  launched : int;  (** admitted background flows *)
  delivered : int;  (** of those, delivered end-to-end *)
  verify_errors : int;
  verify_reports : int;  (** diagnostics incl. warnings, for context *)
  reconcile : reconcile_obs option;
  breakers : breaker_obs list;
  victim_sheds : int option;
      (** tenancy on: sheds charged to the victim tenant *)
  digest : string;  (** bit-identity fingerprint of the whole run *)
}

type oracle =
  | Verify_clean  (** post-recovery dataplane passes the invariant checker *)
  | Reconcile_converged  (** no stranded intents, no resurrected rules *)
  | Bounded_loss  (** admitted-flow loss bounded by the schedule's exposure *)
  | Breaker_liveness  (** every ejected member readmitted or demoted *)
  | Tenant_isolation  (** victim tenant sheds nothing *)
  | Determinism  (** same schedule, bit-identical digests *)

type violation = { oracle : oracle; detail : string }

val oracle_name : oracle -> string
val oracle_of_name : string -> oracle option

(** Simulation seconds a crash keeps costing flows after its injection
    (heartbeat detection + group rebalance) — counted into
    {!exposure}. *)
val crash_recovery_window : float

(** Severity-weighted fraction of the workload window the schedule
    spends under failure; the unit of {!Schedule.tolerance}'s
    [exposure_loss]. *)
val exposure : Schedule.t -> float

(** Loss fraction the tolerance allows at a given exposure. *)
val allowed_loss : Schedule.tolerance -> exposure:float -> float

(** All violations of the non-determinism oracles, in severity order
    (empty = healthy). *)
val check : Schedule.t -> observation -> violation list

(** Same-seed determinism: compare two runs of one schedule. *)
val check_determinism : first:observation -> second:observation -> violation option

val pp_violation : Format.formatter -> violation -> unit
