(** Replayable repro files: the minimized schedule plus the oracle
    verdict it must reproduce, in one exact-round-trip text file. *)

type t = {
  schedule : Schedule.t;
  violated : Oracle.oracle list;
      (** the verdict a replay must reproduce *)
  detail : string list;  (** human-readable violation lines *)
}

val make : schedule:Schedule.t -> Oracle.violation list -> t
val print : t -> string
val parse : string -> (t, string) result
val save : path:string -> t -> unit
val load : string -> (t, string) result
