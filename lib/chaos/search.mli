(** The chaos search loop: generate → run → judge → (on violation)
    shrink → serialize a repro.  Generic over the runner so the
    library never depends on the experiment harness. *)

type runner = Schedule.t -> Oracle.observation

type shrunk = {
  original : Schedule.t;
  minimal : Schedule.t;  (** 1-minimal for the oracle that fired *)
  minimal_violations : Oracle.violation list;
  shrink_tests : int;  (** simulated candidates ddmin burned *)
  repro_path : string option;
}

type outcome = {
  explored : int;
  faults_injected : int;
  violated_schedules : int;
  violations : (int * Oracle.violation list) list;
      (** (trial index, verdict), in trial order *)
  determinism_checks : int;
  elapsed : float;  (** CPU seconds *)
  budget_exhausted : bool;  (** stopped by the time budget *)
  shrunk : shrunk option;  (** first violation, minimized *)
}

(** Fraction of explored trials with a clean verdict. *)
val pass_rate : outcome -> float

(** [run ~runner ~gen ~schedules ()] explores [schedules] trials
    ([gen ~index] names each one), stopping early after [time_budget]
    CPU seconds.  Every [determinism_every]-th trial (default 7; 0
    disables) is run twice and its digests compared.  The first
    violating trial is delta-debugged against the oracle that fired
    and, when [repro_path] is given, written there as a repro file.
    [log] receives progress lines. *)
val run :
  runner:runner -> gen:(index:int -> Schedule.t) -> schedules:int ->
  ?time_budget:float -> ?determinism_every:int -> ?repro_path:string ->
  ?log:(string -> unit) -> unit -> outcome

(** Replay one schedule and judge it, including a determinism
    double-run — what [--replay] does with a repro's schedule. *)
val replay : runner:runner -> Schedule.t -> Oracle.violation list
