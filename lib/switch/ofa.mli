(** The OpenFlow Agent: the switch's software control plane, and the
    control-path bottleneck at the heart of the paper (§3.1).

    One server, two bounded queues — controller messages (strict
    priority) and outbound Packet-In jobs — plus a periodic
    housekeeping stall during which queues overflow.  Service times and
    capacities come from {!Profile}; ±5 % service jitter and a
    per-device housekeeping phase prevent cross-device phase locking
    (see DESIGN.md §3). *)

open Scotch_openflow
open Scotch_packet

type pin_job = {
  in_port : int;
  tunnel_id : int option;
  reason : Of_types.Packet_in_reason.t;
  packet : Packet.t;
}

(** Switch-side effects triggered when jobs complete. *)
type handler = {
  install_flow : Of_msg.Flow_mod.t -> (unit, [ `Table_full ]) result;
  modify_group :
    Of_msg.Group_mod.t ->
    (unit, [ `Group_exists | `Unknown_group | `Empty_buckets | `Non_positive_weight ]) result;
  execute_packet_out : Of_msg.Packet_out.t -> unit;
  flow_stats : Of_msg.Stats.flow_stats_request -> Of_msg.Stats.flow_stats_reply;
  table_stats : unit -> Of_msg.Stats.table_stats_reply;
  group_stats : unit -> Of_msg.Stats.group_stats_reply;
  telemetry : unit -> Of_msg.Telemetry.report; (** drain the sampler window *)
  on_flow_mod_rejected : unit -> unit; (** datapath reject-stall hook *)
}

type counters = {
  mutable pin_submitted : int;
      (** new-flow packets offered to the pin queue (the arrival
          process, before any admission verdict) — what the predictive
          autoscaler's rate estimator differences *)
  mutable pin_sent : int;          (** Packet-In messages emitted *)
  mutable pin_dropped : int;       (** new-flow packets lost at the pin queue *)
  mutable pin_expired : int;       (** queued pin jobs shed past the deadline *)
  mutable pin_budget_dropped : int;
      (** refused by the submitter's own tenant budget — kept out of
          [pin_dropped] so budget enforcement never reads as overload *)
  mutable flow_mods_handled : int;
  mutable flow_mods_dropped : int; (** controller messages lost at the queue *)
  mutable msgs_handled : int;
}

(** What happens to a new-flow packet arriving at a full Packet-In
    queue: refuse it ([Pin_drop_new], the default — §3.2's tail drop)
    or evict the oldest queued job in its favour ([Pin_drop_oldest]). *)
type pin_policy = Pin_drop_new | Pin_drop_oldest

type t

(** [dpid] labels this agent's metrics and trace rows (0 = unowned). *)
val create :
  ?housekeeping_phase:float -> ?jitter_seed:int -> ?dpid:int -> Scotch_sim.Engine.t ->
  profile:Profile.t -> handler:handler -> t

(** Wire the switch→controller direction (set by the control
    channel). *)
val connect_controller : t -> (Of_msg.t -> unit) -> unit

val counters : t -> counters

(** Failure injection (§5.6 testing): a dead agent neither serves nor
    accepts anything — in particular it stops answering Echo requests,
    which is how the controller detects the failure. *)
val set_dead : t -> bool -> unit

val is_dead : t -> bool

(** Failure injection: multiply every service time by the factor (1.0
    restores nominal speed; raises on non-positive factors).  Models a
    CPU-starved agent rather than a dead one. *)
val set_slowdown : t -> float -> unit

val slowdown : t -> float

(** Failure injection: freeze the agent until absolute time [until].
    Unlike {!set_dead} the agent still accepts (and overflows) queue
    entries, it just does not serve them — the §3.1 housekeeping
    pathology, stretched. *)
val stall : t -> until:float -> unit

val stalled_until : t -> float

(** Admission policy for the Packet-In queue (default
    [Pin_drop_new]). *)
val set_pin_policy : t -> pin_policy -> unit

val pin_policy : t -> pin_policy

(** Shed queued pin jobs older than this (seconds) at serve time
    instead of emitting a Packet-In nobody can act on; [0.] (default)
    disables expiry.  Raises on negative values. *)
val set_pin_deadline : t -> float -> unit

val pin_deadline : t -> float

(** {2 Tenancy: per-tenant pin-queue budgets (blast-radius isolation)} *)

(** Attribute pin jobs to tenants ([None] restores the untenanted
    default).  Must be pure — it may be re-applied to queued jobs. *)
val set_pin_tenant_classifier : t -> (pin_job -> int) option -> unit

(** Cap how many pin-queue slots [tenant] may hold at once ([None]
    removes the cap; raises on budgets below 1).  Only effective with
    a classifier installed.  Past its budget a tenant sheds only its
    own jobs, and [Pin_drop_oldest] never evicts across a tenant
    boundary. *)
val set_pin_budget : t -> tenant:int -> int option -> unit

(** Pin jobs submitted attributable to [tenant] so far. *)
val pin_tenant_submitted : t -> tenant:int -> int

(** Pin-queue slots [tenant] holds right now. *)
val pin_tenant_queued : t -> tenant:int -> int

(** Pin jobs shed attributable to [tenant]: budget refusals, capacity
    drops and deadline expiries. *)
val pin_tenant_shed : t -> tenant:int -> int

(** Queue a new-flow packet for Packet-In generation; dropped (counted)
    when the queue is full — the control-path loss of §3.2. *)
val submit_packet_in : t -> pin_job -> unit

(** The controller→switch direction.  A full queue drops the message;
    dropped FlowMods additionally trigger the datapath reject-stall
    hook (the TCAM thrash of Fig. 10). *)
val deliver_message : t -> Of_msg.t -> unit

(** (controller-message, Packet-In) queue depths, for observability. *)
val queue_depths : t -> int * int
