(** A single OpenFlow flow table: priority-ordered rules with masked
    matches, per-rule counters, idle/hard timeouts and a bounded
    capacity (the TCAM limit §3.3 notes can also bottleneck switches).

    Layout: rules live in per-priority buckets (descending priority
    order).  Within a bucket, rules are keyed by their match for O(1)
    add/replace/delete; {e exact-flow} rules (5-tuple only, the
    overwhelmingly common reactive-rule shape) are additionally probed
    in O(1) during lookup by constructing the packet's own exact match,
    while non-exact rules are scanned.  Expiry is lazy, with periodic
    sweeps keeping the live count honest. *)

open Scotch_openflow
open Scotch_packet

type rule = {
  priority : int;
  match_ : Of_match.t;
  instructions : Of_action.instructions;
  idle_timeout : float; (* 0 = none *)
  hard_timeout : float;
  cookie : Of_types.cookie;
  installed_at : float;
  mutable last_used : float;
  mutable packet_count : int;
  mutable byte_count : int;
}

(** A rule is "exact-flow-shaped" when lookup can find it by probing
    with the packet's own 5-tuple match. *)
let is_exact_shape (m : Of_match.t) =
  m.Of_match.in_port = None && m.Of_match.eth_type = None && m.Of_match.mpls_label = None
  && m.Of_match.gre_key = None && m.Of_match.tunnel_id = None
  && (match m.Of_match.ip_src with
     | Some { Of_match.mask; _ } -> mask = Ipv4_addr.mask32
     | None -> false)
  && (match m.Of_match.ip_dst with
     | Some { Of_match.mask; _ } -> mask = Ipv4_addr.mask32
     | None -> false)
  && m.Of_match.ip_proto <> None && m.Of_match.l4_src <> None && m.Of_match.l4_dst <> None

type bucket = {
  bpriority : int;
  by_match : (Of_match.t, rule) Hashtbl.t; (* every rule of this priority *)
  mutable scan : rule list;                (* non-exact rules only *)
}

(** One applied table mutation, as seen by an {!set_on_change}
    observer.  A replace fires [Rule_removed old] then [Rule_added new];
    sweeps fire [Rule_removed] per reaped rule.  Lazy expiry is not a
    mutation: an expired rule is only reported when a sweep reaps it. *)
type change = Rule_added of rule | Rule_removed of rule

type t = {
  table_id : Of_types.table_id;
  capacity : int;
  mutable buckets : bucket list; (* descending priority *)
  mutable count : int;           (* rules present (possibly expired, pre-sweep) *)
  mutable insert_failures : int;
  mutable on_change : (change -> unit) option; (* verifier tap *)
}

let create ?(capacity = max_int) ~table_id () =
  { table_id; capacity; buckets = []; count = 0; insert_failures = 0; on_change = None }

let table_id t = t.table_id

let set_on_change t f = t.on_change <- f

let notify t ch = match t.on_change with None -> () | Some f -> f ch

let is_expired ~now r =
  (r.hard_timeout > 0.0 && now -. r.installed_at >= r.hard_timeout)
  || (r.idle_timeout > 0.0 && now -. r.last_used >= r.idle_timeout)

let remove_from_bucket t b r =
  Hashtbl.remove b.by_match r.match_;
  if not (is_exact_shape r.match_) then b.scan <- List.filter (fun x -> x != r) b.scan;
  notify t (Rule_removed r)

(** Remove expired rules; returns the number reaped. *)
let sweep t ~now =
  let reaped = ref 0 in
  List.iter
    (fun b ->
      let dead = Hashtbl.fold (fun _ r acc -> if is_expired ~now r then r :: acc else acc) b.by_match [] in
      List.iter
        (fun r ->
          remove_from_bucket t b r;
          incr reaped)
        dead)
    t.buckets;
  t.buckets <- List.filter (fun b -> Hashtbl.length b.by_match > 0) t.buckets;
  t.count <- t.count - !reaped;
  !reaped

(** Live rule count (sweeps first, so the answer is exact). *)
let size t ~now =
  ignore (sweep t ~now);
  t.count

let find_bucket t priority = List.find_opt (fun b -> b.bpriority = priority) t.buckets

let add_bucket t priority =
  let b = { bpriority = priority; by_match = Hashtbl.create 16; scan = [] } in
  let rec place = function
    | [] -> [ b ]
    | x :: rest when x.bpriority > priority -> x :: place rest
    | rest -> b :: rest
  in
  t.buckets <- place t.buckets;
  b

(** [insert t ~now ...] adds a rule.  A rule with an equal match and
    priority replaces the old one (OpenFlow ADD semantics).  Returns
    [Error `Table_full] at capacity (counted in [insert_failures]). *)
let insert t ~now ~priority ~match_ ~instructions ~idle_timeout ~hard_timeout ~cookie =
  let b = match find_bucket t priority with Some b -> b | None -> add_bucket t priority in
  let fresh () =
    { priority; match_; instructions; idle_timeout; hard_timeout; cookie; installed_at = now;
      last_used = now; packet_count = 0; byte_count = 0 }
  in
  match Hashtbl.find_opt b.by_match match_ with
  | Some old ->
    let r = { (fresh ()) with packet_count = old.packet_count; byte_count = old.byte_count } in
    remove_from_bucket t b old;
    Hashtbl.replace b.by_match match_ r;
    if not (is_exact_shape match_) then b.scan <- r :: b.scan;
    notify t (Rule_added r);
    Ok ()
  | None ->
    if t.count >= t.capacity then ignore (sweep t ~now);
    if t.count >= t.capacity then begin
      t.insert_failures <- t.insert_failures + 1;
      Error `Table_full
    end
    else begin
      (* the sweep may have dropped this bucket; re-resolve it *)
      let b = match find_bucket t priority with Some b -> b | None -> add_bucket t priority in
      let r = fresh () in
      Hashtbl.replace b.by_match match_ r;
      if not (is_exact_shape match_) then b.scan <- r :: b.scan;
      t.count <- t.count + 1;
      notify t (Rule_added r);
      Ok ()
    end

(** [delete t ?priority ~match_ ()] removes rules whose match equals
    [match_] (all priorities unless [priority] given); returns the
    number removed. *)
let delete t ?priority ~match_ () =
  let removed = ref 0 in
  List.iter
    (fun b ->
      match priority with
      | Some p when p <> b.bpriority -> ()
      | _ -> (
        match Hashtbl.find_opt b.by_match match_ with
        | Some r ->
          remove_from_bucket t b r;
          incr removed
        | None -> ()))
    t.buckets;
  t.count <- t.count - !removed;
  !removed

(** [delete_by_cookie t cookie] removes all rules tagged [cookie]
    (Scotch withdraws its overlay rules this way). *)
let delete_by_cookie t cookie =
  let removed = ref 0 in
  List.iter
    (fun b ->
      let dead =
        Hashtbl.fold (fun _ r acc -> if r.cookie = cookie then r :: acc else acc) b.by_match []
      in
      List.iter
        (fun r ->
          remove_from_bucket t b r;
          incr removed)
        dead)
    t.buckets;
  t.count <- t.count - !removed;
  !removed

let touch ~now ~size:sz r =
  r.last_used <- now;
  r.packet_count <- r.packet_count + 1;
  r.byte_count <- r.byte_count + sz

let match_in_bucket ~now b (ctx : Of_match.context) =
  (* O(1) probe for an exact-flow rule, then scan the non-exact rules *)
  let exact =
    match Hashtbl.find_opt b.by_match (Of_match.exact_flow (Packet.flow_key ctx.Of_match.packet)) with
    | Some r when not (is_expired ~now r) -> Some r
    | Some _ | None -> None
  in
  match exact with
  | Some _ -> exact
  | None ->
    List.find_opt (fun r -> (not (is_expired ~now r)) && Of_match.matches r.match_ ctx) b.scan

(** [lookup t ~now ctx] finds the highest-priority live rule matching
    [ctx], updating its counters and idle timer. *)
let lookup t ~now (ctx : Of_match.context) =
  let rec go = function
    | [] -> None
    | b :: rest -> (
      match match_in_bucket ~now b ctx with
      | Some r ->
        touch ~now ~size:(Packet.size ctx.Of_match.packet) r;
        Some r
      | None -> go rest)
  in
  go t.buckets

(** Pure lookup: no counter updates (tests and stats). *)
let peek t ~now (ctx : Of_match.context) =
  let rec go = function
    | [] -> None
    | b :: rest -> (
      match match_in_bucket ~now b ctx with Some r -> Some r | None -> go rest)
  in
  go t.buckets

(** Flow statistics for all live rules. *)
let stats t ~now : Of_msg.Stats.flow_stat list =
  List.concat_map
    (fun b ->
      Hashtbl.fold
        (fun _ r acc ->
          if is_expired ~now r then acc
          else
            { Of_msg.Stats.table_id = t.table_id;
              priority = r.priority;
              match_ = r.match_;
              packet_count = r.packet_count;
              byte_count = r.byte_count;
              duration = now -. r.installed_at;
              cookie = r.cookie }
            :: acc)
        b.by_match [])
    t.buckets

let insert_failures t = t.insert_failures

let iter_rules t f = List.iter (fun b -> Hashtbl.iter (fun _ r -> f r) b.by_match) t.buckets

(* The deterministic tie-break below orders same-priority rules by
   their printed match; matches are immutable, so the string is
   computed once per distinct match rather than inside the comparator
   (where it dominates on reactive tables whose rules all share one
   priority — continuous verification reads the table on every
   install).  Bounded by an occasional reset so a long-lived process
   cannot accumulate strings for every flow it ever saw. *)
let pp_memo : (Of_match.t, string) Hashtbl.t = Hashtbl.create 1024

let printed_match m =
  match Hashtbl.find_opt pp_memo m with
  | Some s -> s
  | None ->
    if Hashtbl.length pp_memo > 100_000 then Hashtbl.reset pp_memo;
    let s = Format.asprintf "%a" Of_match.pp m in
    Hashtbl.add pp_memo m s;
    s

(** Live rules at [now], highest priority first (ties broken by
    specificity then by printed match, so the order is deterministic
    whatever the hashing) — the flow-table half of a
    {!Scotch_verify.Snapshot}. *)
let live_rules t ~now =
  let acc = ref [] in
  List.iter
    (fun b ->
      Hashtbl.iter
        (fun _ r ->
          if not (is_expired ~now r) then
            acc := (Of_match.specificity r.match_, printed_match r.match_, r) :: !acc)
        b.by_match)
    t.buckets;
  List.map
    (fun (_, _, r) -> r)
    (List.sort
       (fun (sa, ka, (a : rule)) (sb, kb, (b : rule)) ->
         match compare b.priority a.priority with
         | 0 -> ( match compare sb sa with 0 -> compare ka kb | c -> c)
         | c -> c)
       !acc)
