(** An OpenFlow switch: data-plane pipeline + {!Ofa} control agent.

    The same implementation models hardware switches and Open vSwitches;
    only the {!Profile} differs.  Ports are integers; a port may be a
    tunnel endpoint — on output the packet is encapsulated with the
    tunnel id, on input the header is stripped and exposed to the
    pipeline as [tunnel_id] metadata.  This is how the Scotch overlay
    rides the data plane without touching any OFA (§4.1). *)

open Scotch_openflow

(** Encapsulation a tunnel port applies (§4.1: "GRE, MPLS, MAC-in-MAC,
    etc."). *)
type tunnel_encap = Mpls_tunnel | Gre_tunnel

type port_kind = Normal | Tunnel of int (** tunnel id *)

(** A dataplane state change, as seen by a {!set_on_update} observer.
    Table events carry the applied rule delta (from
    {!Flow_table.set_on_change}, so capacity sweeps are covered too);
    for groups and liveness the observer reads the new state through
    the normal accessors ([group_table], [ports_snapshot]). *)
type update_event =
  | Table_changed of {
      table_id : int;
      added : Flow_table.rule list;
      removed : Flow_table.rule list;
    }  (** flow table [table_id] applied this rule delta *)
  | Groups_changed            (** the group table changed *)
  | Liveness_changed of bool  (** switch failed (true) or revived (false) *)

type counters = {
  mutable rx : int;
  mutable tx : int;
  mutable dropped_blocked : int;   (** datapath stalled by TCAM writes *)
  mutable dropped_capacity : int;  (** datapath pps exceeded *)
  mutable dropped_no_rule : int;   (** table miss with no miss rule *)
  mutable dropped_action : int;    (** explicit Drop / unconnected port *)
}

type t

(** [create engine ~dpid ~name ~profile ~num_tables ()] builds a switch
    with [num_tables] flow tables (Scotch's two-table miss pipeline
    needs at least 2, the default). *)
val create :
  Scotch_sim.Engine.t -> dpid:Of_types.datapath_id -> name:string -> profile:Profile.t ->
  ?num_tables:int -> unit -> t

(** The switch's control agent. *)
val ofa : t -> Ofa.t

(** Data-plane entry point: capacity and TCAM-stall gates, tunnel
    decapsulation, then the pipeline from table 0. *)
val receive : t -> in_port:int -> Scotch_packet.Packet.t -> unit

(** Attach an outgoing link on a port; the peer is whatever the link's
    sink delivers to.  Raises on duplicate port ids. *)
val add_port :
  t -> port_id:int -> ?kind:port_kind -> ?encap:tunnel_encap -> Scotch_sim.Link.t -> unit

(** Declare an input-only port (where only the peer sends). *)
val add_input_port : t -> port_id:int -> ?kind:port_kind -> ?encap:tunnel_encap -> unit -> unit

(** Failure injection: kill or revive both planes. *)
val set_failed : t -> bool -> unit

val is_failed : t -> bool

(** The outgoing link attached to a port, if any (fault injection:
    link-flap targets are addressed as (switch, port)). *)
val link_of_port : t -> int -> Scotch_sim.Link.t option

(** Ids of the normal (non-tunnel) ports, sorted. *)
val normal_ports : t -> int list

val all_ports : t -> int list

(** Every port with its kind and outgoing link, sorted by port id — the
    port half of a verification snapshot; [None] link = input-only. *)
val ports_snapshot : t -> (int * port_kind * Scotch_sim.Link.t option) list
val dpid : t -> Of_types.datapath_id
val name : t -> string

(** Attach (or detach, with [None]) a telemetry sampler fed from the
    receive path, after tunnel decap and the admission gates.  [None]
    (the default) leaves the datapath identical to a telemetry-free
    build — no RNG draws, no extra work per packet. *)
val set_sampler : t -> Scotch_telemetry.Sampler.t option -> unit

val sampler : t -> Scotch_telemetry.Sampler.t option

(** Attach (or detach, with [None]) a dataplane-update observer, fired
    synchronously after every applied rule mutation, group-mod or
    liveness flip — the incremental verifier's tap.  Wires (or clears)
    every flow table's {!Flow_table.set_on_change}; [None] (the
    default) leaves the tables observer-free and costs nothing on the
    packet path. *)
val set_on_update : t -> (update_event -> unit) option -> unit
val profile : t -> Profile.t
val counters : t -> counters
val tables : t -> Flow_table.t array
val table : t -> int -> Flow_table.t
val group_table : t -> Group_table.t

(** Install a rule directly, bypassing the OFA (tests and proactive
    setup). *)
val install_direct :
  t -> table_id:int -> priority:int -> match_:Of_match.t ->
  instructions:Of_action.instructions -> ?idle_timeout:float -> ?hard_timeout:float ->
  ?cookie:Of_types.cookie -> unit -> (unit, [ `Table_full ]) result

val pp : Format.formatter -> t -> unit

(** Time until which the forwarding pipeline is stalled by TCAM writes
    (observability; equals [now] or earlier when not stalled). *)
val blocked_until : t -> float
