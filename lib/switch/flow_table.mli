(** A single OpenFlow flow table: priority-ordered rules with masked
    matches, per-rule counters, idle/hard timeouts and a bounded
    capacity (the TCAM limit of §3.3).

    Rules live in per-priority buckets; exact-5-tuple rules (the common
    reactive shape) are probed in O(1) during lookup, non-exact rules
    are scanned.  Expiry is lazy with periodic sweeps. *)

open Scotch_openflow

type rule = {
  priority : int;
  match_ : Of_match.t;
  instructions : Of_action.instructions;
  idle_timeout : float; (** 0 = none *)
  hard_timeout : float;
  cookie : Of_types.cookie;
  installed_at : float;
  mutable last_used : float;
  mutable packet_count : int;
  mutable byte_count : int;
}

type t

(** One applied table mutation, as seen by an {!set_on_change}
    observer.  A replace fires [Rule_removed old] then [Rule_added new];
    sweeps fire [Rule_removed] per reaped rule.  Lazy expiry is not a
    mutation: an expired rule is only reported when a sweep reaps it. *)
type change = Rule_added of rule | Rule_removed of rule

val create : ?capacity:int -> table_id:Of_types.table_id -> unit -> t
val table_id : t -> Of_types.table_id

(** Attach (or detach, with [None]) a mutation observer, fired
    synchronously after every applied rule add/replace/delete/reap.
    [None] — the default — costs one [match] per mutation. *)
val set_on_change : t -> (change -> unit) option -> unit

(** Remove expired rules; returns the number reaped. *)
val sweep : t -> now:float -> int

(** Live rule count (sweeps first; exact). *)
val size : t -> now:float -> int

(** Add a rule.  An equal (match, priority) pair replaces the old rule,
    keeping its counters (OpenFlow ADD semantics).  [Error `Table_full]
    at capacity, counted in {!insert_failures}. *)
val insert :
  t -> now:float -> priority:int -> match_:Of_match.t ->
  instructions:Of_action.instructions -> idle_timeout:float -> hard_timeout:float ->
  cookie:Of_types.cookie -> (unit, [ `Table_full ]) result

(** Remove rules whose match equals [match_] (all priorities unless
    given); returns the number removed. *)
val delete : t -> ?priority:int -> match_:Of_match.t -> unit -> int

(** Remove all rules tagged [cookie] (how Scotch withdraws its shared
    overlay rules). *)
val delete_by_cookie : t -> Of_types.cookie -> int

(** Highest-priority live rule matching the context, updating its
    counters and idle timer. *)
val lookup : t -> now:float -> Of_match.context -> rule option

(** Pure lookup: no counter updates. *)
val peek : t -> now:float -> Of_match.context -> rule option

(** Flow statistics for all live rules. *)
val stats : t -> now:float -> Of_msg.Stats.flow_stat list

(** Inserts rejected for capacity so far. *)
val insert_failures : t -> int

val iter_rules : t -> (rule -> unit) -> unit

(** Live rules at [now], highest priority first (deterministic order);
    the flow-table half of a verification snapshot. *)
val live_rules : t -> now:float -> rule list
