(** The OpenFlow Agent: the switch's software control plane.

    "The OFA typically runs on a low end CPU that has limited processing
    power … this can significantly limit the control path throughput"
    (§3.1).  We model it as a single server with two bounded input
    queues — controller messages (strict priority: the agent drains its
    TCP socket eagerly) and outbound Packet-In jobs — plus a periodic
    housekeeping stall during which the server pauses and queues
    overflow.  Service times and capacities come from {!Profile}.

    Effects of served jobs (rule installation, packet output, stats
    reads) are delegated to the owning switch through a {!handler}. *)

open Scotch_openflow
open Scotch_packet

type pin_job = {
  in_port : int;
  tunnel_id : int option;
  reason : Of_types.Packet_in_reason.t;
  packet : Packet.t;
}

type job =
  | Packet_in_job of pin_job
  | Message_job of Of_msg.t

(** Switch-side effects the OFA triggers when jobs complete. *)
type handler = {
  install_flow : Of_msg.Flow_mod.t -> (unit, [ `Table_full ]) result;
  modify_group :
    Of_msg.Group_mod.t ->
    (unit, [ `Group_exists | `Unknown_group | `Empty_buckets | `Non_positive_weight ]) result;
  execute_packet_out : Of_msg.Packet_out.t -> unit;
  flow_stats : Of_msg.Stats.flow_stats_request -> Of_msg.Stats.flow_stats_reply;
  table_stats : unit -> Of_msg.Stats.table_stats_reply;
  group_stats : unit -> Of_msg.Stats.group_stats_reply;
  telemetry : unit -> Of_msg.Telemetry.report; (* drain the sampler window *)
  on_flow_mod_rejected : unit -> unit; (* datapath reject stall hook *)
}

type counters = {
  mutable pin_submitted : int;     (* new-flow packets offered to the pin queue *)
  mutable pin_sent : int;          (* Packet-In messages emitted *)
  mutable pin_dropped : int;       (* new-flow packets lost at the pin queue *)
  mutable pin_expired : int;       (* queued pin jobs shed past the deadline *)
  mutable pin_budget_dropped : int; (* refused by the submitter's own tenant budget *)
  mutable flow_mods_handled : int;
  mutable flow_mods_dropped : int; (* controller messages lost at the queue *)
  mutable msgs_handled : int;
}

(** What happens to a new-flow packet arriving at a full Packet-In
    queue: refuse it ([Pin_drop_new], the default — §3.2's tail drop)
    or evict the oldest queued job in its favour ([Pin_drop_oldest] —
    under sustained overload a recent miss is far more likely to still
    have a live flow behind it than one queued long ago). *)
type pin_policy = Pin_drop_new | Pin_drop_oldest

type t = {
  engine : Scotch_sim.Engine.t;
  profile : Profile.t;
  housekeeping_phase : float;
      (* per-device offset of the maintenance window: real agents'
         housekeeping clocks are not synchronized across devices *)
  rng : Scotch_util.Rng.t;
      (* ±5 % service-time jitter: exact identical service times in a
         deterministic simulator phase-lock unrelated devices and create
         correlation cascades no real agent exhibits *)
  pin_queue : (float * pin_job) Queue.t; (* (enqueue time, job) *)
  cmsg_queue : Of_msg.t Queue.t;
  mutable pin_policy : pin_policy;
  mutable pin_deadline : float; (* 0. = disabled *)
  mutable pin_tenant_of : (pin_job -> int) option;
      (* tenant attribution of a pin job; None = untenanted (default) *)
  pin_budgets : (int, int) Hashtbl.t;   (* tenant -> max queued pin jobs *)
  pin_queued_t : (int, int) Hashtbl.t;  (* tenant -> slots held right now *)
  pin_submitted_t : (int, int) Hashtbl.t;
  pin_shed_t : (int, int) Hashtbl.t;
  mutable busy : bool;
  mutable to_controller : Of_msg.t -> unit;
  handler : handler;
  counters : counters;
  mutable next_xid : int;
  mutable dead : bool; (* failure injection: a dead agent is silent *)
  mutable slowdown : float;
      (* failure injection: service-time multiplier (> 1 models a
         CPU-starved agent, e.g. an SNMP walk or a BGP burst on the
         management CPU) *)
  mutable stalled_until : float;
      (* failure injection: the agent freezes (queues keep filling and
         overflowing) until this absolute time *)
  dpid : int;
  service_h : Scotch_obs.Registry.histogram;
      (* service-time distribution; observed only when obs is enabled *)
  hot_pin : Scotch_obs.Obs.hot_site; (* trace decimation: per-job serve spans *)
  hot_msg : Scotch_obs.Obs.hot_site;
}

(* Re-express this agent's ledger on the metrics registry: counters are
   polled from the [counters] record at snapshot time, queue depths are
   pull-style gauges — the serve/submit hot paths stay untouched. *)
let register_metrics t =
  let module O = Scotch_obs.Obs in
  let labels = [ ("dpid", string_of_int t.dpid) ] in
  let c = t.counters in
  O.counter_fn ~help:"New-flow packets offered to the OFA's Packet-In queue" ~labels
    "scotch_ofa_pin_submitted_total" (fun () -> c.pin_submitted);
  O.counter_fn ~help:"Packet-In messages emitted by the OFA" ~labels
    "scotch_ofa_pin_sent_total" (fun () -> c.pin_sent);
  O.counter_fn ~help:"New-flow packets lost at the Packet-In queue" ~labels
    "scotch_ofa_pin_dropped_total" (fun () -> c.pin_dropped);
  O.counter_fn ~help:"Queued Packet-In jobs shed past the pin deadline" ~labels
    "scotch_ofa_pin_expired_total" (fun () -> c.pin_expired);
  O.counter_fn ~help:"Pin jobs refused by the submitter's own tenant budget" ~labels
    "scotch_ofa_pin_budget_dropped_total" (fun () -> c.pin_budget_dropped);
  O.counter_fn ~help:"FlowMods applied by the OFA" ~labels
    "scotch_ofa_flow_mods_handled_total" (fun () -> c.flow_mods_handled);
  O.counter_fn ~help:"Controller messages lost at the OFA queue" ~labels
    "scotch_ofa_flow_mods_dropped_total" (fun () -> c.flow_mods_dropped);
  O.counter_fn ~help:"Controller messages served by the OFA" ~labels
    "scotch_ofa_msgs_handled_total" (fun () -> c.msgs_handled);
  O.gauge_fn ~help:"OFA input queue depth" ~labels:(("queue", "cmsg") :: labels)
    "scotch_ofa_queue_depth" (fun () -> float_of_int (Queue.length t.cmsg_queue));
  O.gauge_fn ~help:"OFA input queue depth" ~labels:(("queue", "pin") :: labels)
    "scotch_ofa_queue_depth" (fun () -> float_of_int (Queue.length t.pin_queue))

let create ?(housekeeping_phase = 0.0) ?(jitter_seed = 0) ?(dpid = 0) engine ~profile ~handler =
  let t =
    { engine; profile; housekeeping_phase; rng = Scotch_util.Rng.create (jitter_seed lxor 0x0FA);
      pin_queue = Queue.create (); cmsg_queue = Queue.create ();
      pin_policy = Pin_drop_new; pin_deadline = 0.0;
      pin_tenant_of = None; pin_budgets = Hashtbl.create 4;
      pin_queued_t = Hashtbl.create 4; pin_submitted_t = Hashtbl.create 4;
      pin_shed_t = Hashtbl.create 4;
      busy = false; to_controller = (fun _ -> ()); handler;
      counters =
        { pin_submitted = 0; pin_sent = 0; pin_dropped = 0; pin_expired = 0;
          pin_budget_dropped = 0;
          flow_mods_handled = 0; flow_mods_dropped = 0; msgs_handled = 0 };
      next_xid = 1; dead = false; slowdown = 1.0; stalled_until = 0.0; dpid;
      service_h =
        Scotch_obs.Obs.histogram ~help:"OFA job service time (virtual seconds)"
          ~labels:[ ("dpid", string_of_int dpid) ] ~lo:0.0 ~hi:0.05 ~bins:50
          "scotch_ofa_service_time_seconds";
      hot_pin = Scotch_obs.Obs.hot_site (); hot_msg = Scotch_obs.Obs.hot_site () }
  in
  register_metrics t;
  t

(** Wire the switch→controller direction (set by the control channel). *)
let connect_controller t send = t.to_controller <- send

let counters t = t.counters

let fresh_xid t =
  let x = t.next_xid in
  t.next_xid <- t.next_xid + 1;
  x

(** End of the housekeeping window covering [now], if any. *)
let housekeeping_end t ~now =
  let p = t.profile.Profile.housekeeping_period in
  if p <= 0.0 then None
  else begin
    let shifted = now -. t.housekeeping_phase in
    let phase = Float.rem (Float.rem shifted p +. p) p in
    if phase < t.profile.Profile.housekeeping_duration then
      Some (now -. phase +. t.profile.Profile.housekeeping_duration)
    else None
  end

let service_time t (job : job) =
  let p = t.profile in
  let base =
    match job with
    | Packet_in_job _ -> p.Profile.packet_in_service
    | Message_job m -> (
      match m.Of_msg.payload with
      | Of_msg.Flow_mod _ -> p.Profile.flow_mod_service
      | Of_msg.Packet_out _ -> p.Profile.packet_out_service
      | _ -> p.Profile.misc_service)
  in
  base *. t.slowdown *. (0.95 +. Scotch_util.Rng.float t.rng 0.1)

let execute t (job : job) =
  let c = t.counters in
  match job with
  | Packet_in_job { in_port; tunnel_id; reason; packet } ->
    c.pin_sent <- c.pin_sent + 1;
    let pi = Of_msg.Packet_in.make ?tunnel_id ~reason ~in_port packet in
    t.to_controller (Of_msg.make ~xid:(fresh_xid t) (Of_msg.Packet_in pi))
  | Message_job msg -> (
    c.msgs_handled <- c.msgs_handled + 1;
    let reply payload = t.to_controller (Of_msg.make ~xid:msg.Of_msg.xid payload) in
    match msg.Of_msg.payload with
    | Of_msg.Flow_mod fm ->
      c.flow_mods_handled <- c.flow_mods_handled + 1;
      (match t.handler.install_flow fm with
      | Ok () -> ()
      | Error `Table_full -> reply (Of_msg.Error "table full"))
    | Of_msg.Group_mod gm -> (
      match t.handler.modify_group gm with
      | Ok () -> ()
      | Error `Group_exists -> reply (Of_msg.Error "group exists")
      | Error `Unknown_group -> reply (Of_msg.Error "unknown group")
      | Error `Empty_buckets -> reply (Of_msg.Error "empty bucket list")
      | Error `Non_positive_weight -> reply (Of_msg.Error "non-positive bucket weight"))
    | Of_msg.Packet_out po -> t.handler.execute_packet_out po
    | Of_msg.Echo_request -> reply Of_msg.Echo_reply
    | Of_msg.Flow_stats_request req -> reply (Of_msg.Flow_stats_reply (t.handler.flow_stats req))
    | Of_msg.Table_stats_request -> reply (Of_msg.Table_stats_reply (t.handler.table_stats ()))
    | Of_msg.Group_stats_request -> reply (Of_msg.Group_stats_reply (t.handler.group_stats ()))
    | Of_msg.Telemetry_request -> reply (Of_msg.Telemetry_reply (t.handler.telemetry ()))
    | Of_msg.Barrier_request -> reply Of_msg.Barrier_reply
    | Of_msg.Hello | Of_msg.Echo_reply | Of_msg.Barrier_reply | Of_msg.Error _
    | Of_msg.Flow_stats_reply _ | Of_msg.Table_stats_reply _ | Of_msg.Group_stats_reply _
    | Of_msg.Telemetry_reply _ | Of_msg.Packet_in _ -> ())

(** Failure injection (§5.6 testing): a dead OFA neither serves nor
    accepts anything — in particular it stops answering Echo requests,
    which is how the controller detects the failure. *)
let set_dead t dead = t.dead <- dead

let is_dead t = t.dead

(** Failure injection: multiply every service time by [factor] (1.0
    restores nominal speed).  Jobs already in service finish at their
    scheduled time; the factor applies from the next job on. *)
let set_slowdown t factor =
  if factor <= 0.0 then invalid_arg "Ofa.set_slowdown: factor must be positive";
  t.slowdown <- factor

let slowdown t = t.slowdown

(** Failure injection: freeze the agent until absolute time [until].
    Unlike {!set_dead} the agent still accepts queue entries (and drops
    on overflow), it just does not serve them — the §3.1 "OFA busy with
    housekeeping" pathology, stretched. *)
let stall t ~until = t.stalled_until <- Stdlib.max t.stalled_until until

let stalled_until t = t.stalled_until

(** Admission knobs for the Packet-In queue. *)
let set_pin_policy t p = t.pin_policy <- p

let pin_policy t = t.pin_policy

let set_pin_deadline t d =
  if d < 0.0 then invalid_arg "Ofa.set_pin_deadline: deadline must be >= 0";
  t.pin_deadline <- d

let pin_deadline t = t.pin_deadline

(** {2 Tenancy: per-tenant pin-queue budgets} *)

let bump tbl tenant n =
  let cur = match Hashtbl.find_opt tbl tenant with Some c -> c | None -> 0 in
  Hashtbl.replace tbl tenant (cur + n)

let tbl_count tbl tenant =
  match Hashtbl.find_opt tbl tenant with Some c -> c | None -> 0

(** Attribute pin jobs to tenants ([None] restores the untenanted
    default).  The classifier must be pure — it may be re-applied to a
    job already in the queue. *)
let set_pin_tenant_classifier t f = t.pin_tenant_of <- f

(** Cap how many pin-queue slots [tenant] may hold at once ([None]
    removes the cap).  Only effective with a classifier installed. *)
let set_pin_budget t ~tenant budget =
  match budget with
  | Some b when b < 1 -> invalid_arg "Ofa.set_pin_budget: budget must be >= 1"
  | Some b -> Hashtbl.replace t.pin_budgets tenant b
  | None -> Hashtbl.remove t.pin_budgets tenant

let pin_tenant t job = match t.pin_tenant_of with None -> None | Some f -> Some (f job)

let pin_tenant_submitted t ~tenant = tbl_count t.pin_submitted_t tenant

let pin_tenant_queued t ~tenant = tbl_count t.pin_queued_t tenant

(** Pin jobs shed attributable to [tenant]: budget refusals, capacity
    drops and deadline expiries of its queued jobs. *)
let pin_tenant_shed t ~tenant = tbl_count t.pin_shed_t tenant

(* Evict the oldest queued pin job belonging to [tenant] (isolation:
   a newcomer may only displace its own tenant's work).  Returns false
   when the tenant holds no queued job. *)
let evict_oldest_pin_of t tenant =
  match t.pin_tenant_of with
  | None -> false
  | Some classify ->
    let tmp = Queue.create () in
    let found = ref false in
    while not (Queue.is_empty t.pin_queue) do
      let ((_, j) as entry) = Queue.pop t.pin_queue in
      if (not !found) && classify j = tenant then begin
        found := true;
        t.counters.pin_dropped <- t.counters.pin_dropped + 1;
        bump t.pin_queued_t tenant (-1);
        bump t.pin_shed_t tenant 1
      end
      else Queue.push entry tmp
    done;
    Queue.transfer tmp t.pin_queue;
    !found

(* Pop the next pin job still worth emitting: stale entries (queued
   longer than [pin_deadline] ago) are shed without burning a service
   slot — the controller would only see them after the flow's packets
   had already been lost or rerouted. *)
let rec take_fresh_pin t =
  match Queue.take_opt t.pin_queue with
  | None -> None
  | Some (at, j) ->
    let tenant = pin_tenant t j in
    (match tenant with Some tn -> bump t.pin_queued_t tn (-1) | None -> ());
    if t.pin_deadline > 0.0
       && Scotch_sim.Engine.now t.engine -. at > t.pin_deadline
    then begin
      t.counters.pin_expired <- t.counters.pin_expired + 1;
      (match tenant with Some tn -> bump t.pin_shed_t tn 1 | None -> ());
      take_fresh_pin t
    end
    else Some j

let rec serve t =
  if t.dead then t.busy <- false
  else begin
  (* controller messages have strict priority over Packet-In generation *)
  let job =
    match Queue.take_opt t.cmsg_queue with
    | Some m -> Some (Message_job m)
    | None -> (
      match take_fresh_pin t with
      | Some j -> Some (Packet_in_job j)
      | None -> None)
  in
  match job with
  | None -> t.busy <- false
  | Some job ->
    t.busy <- true;
    let now = Scotch_sim.Engine.now t.engine in
    let start = match housekeeping_end t ~now with None -> now | Some e -> e in
    let start = Stdlib.max start t.stalled_until in
    let finish = start +. service_time t job in
    if Scotch_obs.Obs.is_enabled () then begin
      Scotch_obs.Registry.observe t.service_h (finish -. start);
      (* per-job spans fire for every served packet — decimated per site
         so the histogram stays exact but the trace stays small *)
      let name, site =
        match job with
        | Packet_in_job _ -> ("ofa.serve.packet_in", t.hot_pin)
        | Message_job _ -> ("ofa.serve.msg", t.hot_msg)
      in
      if Scotch_obs.Obs.hot_keep site then
        Scotch_obs.Obs.span ~name ~cat:"switch" ~ts:start ~dur:(finish -. start) ~tid:t.dpid
          ~args:[]
    end;
    ignore
      (Scotch_sim.Engine.schedule_at t.engine ~at:finish (fun () ->
           if t.dead then
             (* the agent died mid-service: the job is lost, but [busy]
                must clear or a revived agent never serves again — it
                would accept queue entries forever without draining
                them (and so never answer another Echo) *)
             t.busy <- false
           else begin
             execute t job;
             serve t
           end))
  end

let kick t = if not t.busy then serve t

(** [submit_packet_in t job] queues a new-flow packet for Packet-In
    generation; drops it (counted) when the queue is full — this is the
    control-path loss at the heart of §3.2.  With a tenant classifier
    installed, a tenant past its pin budget sheds only its own job, and
    [Pin_drop_oldest] never evicts another tenant's queued work. *)
let submit_packet_in t (job : pin_job) =
  (* the arrival-process counter the predictive autoscaler's λ̂
     estimator differences: offered load, before any admission verdict *)
  t.counters.pin_submitted <- t.counters.pin_submitted + 1;
  let tenant = pin_tenant t job in
  (match tenant with Some tn -> bump t.pin_submitted_t tn 1 | None -> ());
  let shed_tenant () =
    match tenant with Some tn -> bump t.pin_shed_t tn 1 | None -> ()
  in
  let push () =
    Queue.push (Scotch_sim.Engine.now t.engine, job) t.pin_queue;
    (match tenant with Some tn -> bump t.pin_queued_t tn 1 | None -> ());
    kick t
  in
  if t.dead then begin
    t.counters.pin_dropped <- t.counters.pin_dropped + 1;
    shed_tenant ()
  end
  else begin
    let over_budget =
      match tenant with
      | Some tn -> (
        match Hashtbl.find_opt t.pin_budgets tn with
        | Some b -> tbl_count t.pin_queued_t tn >= b
        | None -> false)
      | None -> false
    in
    if over_budget then begin
      (* the tenant's own pin budget bit: refuse its newcomer without
         touching the shared queue — kept out of [pin_dropped] so the
         autoscaler never reads budget enforcement as pool overload *)
      t.counters.pin_budget_dropped <- t.counters.pin_budget_dropped + 1;
      shed_tenant ()
    end
    else if Queue.length t.pin_queue >= t.profile.Profile.pin_queue_capacity then begin
      match t.pin_policy with
      | Pin_drop_new ->
        t.counters.pin_dropped <- t.counters.pin_dropped + 1;
        shed_tenant ()
      | Pin_drop_oldest -> (
        match tenant with
        | None ->
          (* the victim is counted as dropped; the newcomer takes its slot *)
          (match Queue.take_opt t.pin_queue with
          | Some _ -> t.counters.pin_dropped <- t.counters.pin_dropped + 1
          | None -> ());
          push ()
        | Some tn ->
          (* isolation: only displace the newcomer's own tenant *)
          if evict_oldest_pin_of t tn then push ()
          else begin
            t.counters.pin_dropped <- t.counters.pin_dropped + 1;
            shed_tenant ()
          end)
    end
    else push ()
  end

(** [deliver_message t msg] is the controller→switch direction.  A full
    queue drops the message; dropped FlowMods additionally trigger the
    datapath reject-stall hook (TCAM thrash, Fig. 10). *)
let deliver_message t (msg : Of_msg.t) =
  if t.dead then ()
  else if Queue.length t.cmsg_queue >= t.profile.Profile.ofa_queue_capacity then begin
    (match msg.Of_msg.payload with
    | Of_msg.Flow_mod _ ->
      t.counters.flow_mods_dropped <- t.counters.flow_mods_dropped + 1;
      t.handler.on_flow_mod_rejected ()
    | _ -> ())
  end
  else begin
    Queue.push msg t.cmsg_queue;
    kick t
  end

(** Queue depths, for observability. *)
let queue_depths t = (Queue.length t.cmsg_queue, Queue.length t.pin_queue)
