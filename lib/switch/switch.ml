(** An OpenFlow switch: data-plane pipeline + {!Ofa} control agent.

    The same implementation models hardware switches and Open vSwitches;
    only the {!Profile} differs.  The data plane is fast (profile pps,
    microsecond latency); the control path is slow (the OFA's queues).

    Ports are plain integers.  A port may be a {e tunnel endpoint}: on
    output the packet is MPLS-encapsulated with the tunnel label, and on
    input the label is stripped and exposed to the pipeline as
    [tunnel_id] metadata — this is how the Scotch overlay rides the data
    plane without touching any OFA (§4.1). *)

open Scotch_openflow
open Scotch_packet
open Scotch_util

(** Encapsulation a tunnel port applies; the paper's overlay works over
    "any of the available tunneling protocols, such as GRE, MPLS,
    MAC-in-MAC" (§4.1). *)
type tunnel_encap = Mpls_tunnel | Gre_tunnel

type port_kind = Normal | Tunnel of int (* tunnel id *)

type port = {
  port_id : int;
  kind : port_kind;
  encap : tunnel_encap; (* meaningful only for Tunnel ports *)
  out : Scotch_sim.Link.t option;
}

(** A dataplane state change, as seen by an {!set_on_update} observer.
    Table events carry the applied rule delta (sourced from
    {!Flow_table.set_on_change}, so capacity sweeps are covered too) —
    an observer tracking a big reactive table never has to re-read it.
    For groups and liveness the observer reads the new state through
    the normal accessors ([group_table], [ports_snapshot]). *)
type update_event =
  | Table_changed of {
      table_id : int;
      added : Flow_table.rule list;
      removed : Flow_table.rule list;
    }
  | Groups_changed        (* the group table changed *)
  | Liveness_changed of bool (* switch failed (true) or revived (false) *)

type counters = {
  mutable rx : int;
  mutable tx : int;
  mutable dropped_blocked : int;   (* datapath stalled by TCAM writes *)
  mutable dropped_capacity : int;  (* datapath pps exceeded *)
  mutable dropped_no_rule : int;   (* table miss with no miss rule *)
  mutable dropped_action : int;    (* explicit Drop / unconnected port *)
}

type t = {
  engine : Scotch_sim.Engine.t;
  dpid : Of_types.datapath_id;
  name : string;
  profile : Profile.t;
  tables : Flow_table.t array;
  groups : Group_table.t;
  ports : (int, port) Hashtbl.t;
  mutable ofa : Ofa.t option; (* set at creation; option breaks the cycle *)
  dp_bucket : Token_bucket.t;
  mutable dp_blocked_until : float;
  mutable failed : bool; (* failure injection: data and control planes dead *)
  counters : counters;
  mutable sampler : Scotch_telemetry.Sampler.t option; (* §5.3 sampled telemetry tap *)
  mutable on_update : (update_event -> unit) option; (* verifier tap *)
  hot_miss : Scotch_obs.Obs.hot_site; (* trace decimation for dp.miss *)
  hot_punt : Scotch_obs.Obs.hot_site; (* trace decimation for dp.punt *)
}

let ofa t = Option.get t.ofa

let now t = Scotch_sim.Engine.now t.engine

let notify_update t ev = match t.on_update with None -> () | Some f -> f ev

(* ------------------------------------------------------------------ *)
(* Output path *)

let find_port t pid = Hashtbl.find_opt t.ports pid

let transmit t (port : port) pkt =
  match port.out with
  | None -> t.counters.dropped_action <- t.counters.dropped_action + 1
  | Some link ->
    let pkt =
      match (port.kind, port.encap) with
      | Normal, _ -> pkt
      | Tunnel tid, Mpls_tunnel -> Packet.push_encap (Headers.Encap.mpls tid) pkt
      | Tunnel tid, Gre_tunnel -> Packet.push_encap (Headers.Encap.gre (Int32.of_int tid)) pkt
    in
    t.counters.tx <- t.counters.tx + 1;
    ignore
      (Scotch_sim.Engine.schedule t.engine ~delay:t.profile.Profile.forward_latency (fun () ->
           Scotch_sim.Link.send link pkt))

let output t ~in_port pid pkt =
  match find_port t pid with
  | None -> t.counters.dropped_action <- t.counters.dropped_action + 1
  | Some port -> if port.port_id <> in_port then transmit t port pkt else ()

let flood t ~in_port pkt =
  Hashtbl.iter
    (fun pid port ->
      if pid <> in_port && port.kind = Normal then transmit t port pkt)
    t.ports

(* ------------------------------------------------------------------ *)
(* Pipeline *)

let to_ofa t ~in_port ~tunnel_id ~reason pkt =
  (* the start of the packet-in lifecycle: a data-plane miss (or
     explicit punt) hands the packet to the slow path.  These fire per
     missed packet, so the trace row is decimated per site. *)
  if Scotch_obs.Obs.is_enabled () then begin
    let name, site =
      match reason with
      | Of_types.Packet_in_reason.No_match -> ("dp.miss", t.hot_miss)
      | _ -> ("dp.punt", t.hot_punt)
    in
    if Scotch_obs.Obs.hot_keep site then
      Scotch_obs.Obs.instant ~name ~cat:"switch" ~ts:(now t) ~tid:t.dpid ~args:[]
  end;
  Ofa.submit_packet_in (ofa t) { Ofa.in_port; tunnel_id; reason; packet = pkt }

(** Execute an action list; returns the (possibly rewritten) packet so
    the pipeline can carry header pushes/pops into later tables. *)
let rec apply_actions t ~(ctx : Of_match.context) ~via_miss pkt actions =
  let in_port = ctx.Of_match.in_port in
  match actions with
  | [] -> pkt
  | act :: rest ->
    let continue pkt = apply_actions t ~ctx ~via_miss pkt rest in
    (match act with
    | Of_action.Output (Of_types.Port_no.Physical p) ->
      output t ~in_port p pkt;
      continue pkt
    | Of_action.Output Of_types.Port_no.In_port ->
      (match find_port t in_port with
      | Some port -> transmit t port pkt
      | None -> ());
      continue pkt
    | Of_action.Output Of_types.Port_no.Controller ->
      let reason =
        if via_miss then Of_types.Packet_in_reason.No_match
        else Of_types.Packet_in_reason.Action
      in
      to_ofa t ~in_port ~tunnel_id:ctx.Of_match.tunnel_id ~reason pkt;
      continue pkt
    | Of_action.Output Of_types.Port_no.All ->
      flood t ~in_port pkt;
      continue pkt
    | Of_action.Output (Of_types.Port_no.Local | Of_types.Port_no.Any) -> continue pkt
    | Of_action.Group gid -> (
      match Group_table.find t.groups gid with
      | None ->
        t.counters.dropped_action <- t.counters.dropped_action + 1;
        continue pkt
      | Some g ->
        let flow_hash = Flow_key.hash (Packet.flow_key pkt) in
        let buckets = Group_table.select_bucket g ~flow_hash in
        List.iter
          (fun (b : Of_msg.Group_mod.bucket) ->
            ignore (apply_actions t ~ctx ~via_miss pkt b.Of_msg.Group_mod.actions))
          buckets;
        continue pkt)
    | Of_action.Push_mpls label -> continue (Packet.push_encap (Headers.Encap.mpls label) pkt)
    | Of_action.Pop_mpls -> (
      match Packet.pop_encap pkt with
      | Some (Headers.Encap.Mpls _, pkt') -> continue pkt'
      | Some _ | None -> continue pkt)
    | Of_action.Push_gre key -> continue (Packet.push_encap (Headers.Encap.gre key) pkt)
    | Of_action.Pop_gre -> (
      match Packet.pop_encap pkt with
      | Some (Headers.Encap.Gre _, pkt') -> continue pkt'
      | Some _ | None -> continue pkt)
    | Of_action.Set_eth_dst mac ->
      continue { pkt with Packet.eth = { pkt.Packet.eth with Headers.Ethernet.dst = mac } }
    | Of_action.Set_eth_src mac ->
      continue { pkt with Packet.eth = { pkt.Packet.eth with Headers.Ethernet.src = mac } }
    | Of_action.Dec_ttl ->
      continue { pkt with Packet.ip = Headers.Ipv4.decrement_ttl pkt.Packet.ip }
    | Of_action.Drop ->
      t.counters.dropped_action <- t.counters.dropped_action + 1;
      continue pkt)

let rec run_table t ~table_id ~(ctx : Of_match.context) pkt =
  if table_id >= Array.length t.tables then
    t.counters.dropped_no_rule <- t.counters.dropped_no_rule + 1
  else begin
    let table = t.tables.(table_id) in
    let ctx = { ctx with Of_match.packet = pkt } in
    match Flow_table.lookup table ~now:(now t) ctx with
    | None ->
      (* Bare table miss: OpenFlow 1.3 default is drop; controllers
         install an explicit priority-0 miss rule when they want
         Packet-Ins. *)
      t.counters.dropped_no_rule <- t.counters.dropped_no_rule + 1
    | Some rule ->
      let via_miss = rule.Flow_table.priority = 0 && Of_match.is_wildcard rule.Flow_table.match_ in
      let actions = Of_action.actions_of_instructions rule.Flow_table.instructions in
      let pkt = apply_actions t ~ctx ~via_miss pkt actions in
      (match Of_action.goto_of_instructions rule.Flow_table.instructions with
      | Some next when next > table_id -> run_table t ~table_id:next ~ctx pkt
      | Some _ | None -> ())
  end

(** [receive t ~in_port pkt] is the data-plane entry point: applies the
    capacity and TCAM-stall gates, performs tunnel decapsulation, then
    runs the pipeline from table 0. *)
let receive t ~in_port pkt =
  t.counters.rx <- t.counters.rx + 1;
  let tnow = now t in
  if t.failed then t.counters.dropped_action <- t.counters.dropped_action + 1
  else if tnow < t.dp_blocked_until then
    t.counters.dropped_blocked <- t.counters.dropped_blocked + 1
  else if not (Token_bucket.take t.dp_bucket ~now:tnow) then
    t.counters.dropped_capacity <- t.counters.dropped_capacity + 1
  else begin
    let tunnel_id, pkt =
      match find_port t in_port with
      | Some { kind = Tunnel tid; _ } -> (
        (* strip the outer tunnel header and surface it as metadata *)
        match Packet.pop_encap pkt with
        | Some (Headers.Encap.Mpls { label }, pkt') when label = tid -> (Some tid, pkt')
        | Some (Headers.Encap.Gre { key }, pkt') when Int32.to_int key = tid ->
          (Some tid, pkt')
        | _ -> (Some tid, pkt))
      | _ -> (None, pkt)
    in
    (match t.sampler with
    | Some s ->
      (* telemetry tap: after decap, before table lookup — NetFlow-style
         port sampling that never touches the OFA (§4.1 spirit) *)
      Scotch_telemetry.Sampler.offer s ~tunnel_id (fun () -> Packet.flow_key pkt)
    | None -> ());
    let ctx = Of_match.context ?tunnel_id ~in_port pkt in
    run_table t ~table_id:0 ~ctx pkt
  end

(* ------------------------------------------------------------------ *)
(* Construction *)

let handler_of t : Ofa.handler =
  { Ofa.install_flow =
      (fun fm ->
        match fm.Of_msg.Flow_mod.command with
        | Of_msg.Flow_mod.Delete ->
          Array.iter
            (fun table ->
              if Flow_table.table_id table = fm.Of_msg.Flow_mod.table_id then
                ignore (Flow_table.delete table ~match_:fm.Of_msg.Flow_mod.match_ ()))
            t.tables;
          Ok ()
        | Of_msg.Flow_mod.Add | Of_msg.Flow_mod.Modify ->
          if fm.Of_msg.Flow_mod.table_id >= Array.length t.tables then Error `Table_full
          else begin
            let table = t.tables.(fm.Of_msg.Flow_mod.table_id) in
            let result =
              Flow_table.insert table ~now:(now t)
                ~priority:fm.Of_msg.Flow_mod.priority ~match_:fm.Of_msg.Flow_mod.match_
                ~instructions:fm.Of_msg.Flow_mod.instructions
                ~idle_timeout:fm.Of_msg.Flow_mod.idle_timeout
                ~hard_timeout:fm.Of_msg.Flow_mod.hard_timeout
                ~cookie:fm.Of_msg.Flow_mod.cookie
            in
            (match result with
            | Ok () ->
              (* TCAM write stalls the forwarding pipeline (Fig. 10). *)
              let stall = t.profile.Profile.tcam_write_stall in
              if stall > 0.0 then
                t.dp_blocked_until <- Stdlib.max t.dp_blocked_until (now t) +. stall
            | Error `Table_full -> ());
            result
          end);
    modify_group =
      (fun gm ->
        let result = Group_table.apply t.groups gm in
        (match result with
        | Ok () -> notify_update t Groups_changed
        | Error _ -> ());
        result);
    execute_packet_out =
      (fun po ->
        let ctx = Of_match.context ~in_port:po.Of_msg.Packet_out.in_port po.Of_msg.Packet_out.packet in
        ignore
          (apply_actions t ~ctx ~via_miss:false po.Of_msg.Packet_out.packet
             po.Of_msg.Packet_out.actions));
    flow_stats =
      (fun req ->
        let tnow = now t in
        Array.to_list t.tables
        |> List.concat_map (fun table ->
               if
                 req.Of_msg.Stats.table_id = 0xFF
                 || Flow_table.table_id table = req.Of_msg.Stats.table_id
               then Flow_table.stats table ~now:tnow
               else [])
        |> List.filter (fun (fs : Of_msg.Stats.flow_stat) ->
               Of_match.selects req.Of_msg.Stats.match_ fs.Of_msg.Stats.match_));
    table_stats =
      (fun () ->
        { Of_msg.Stats.active_entries =
            Array.to_list (Array.map (fun table -> Flow_table.size table ~now:(now t)) t.tables)
        });
    group_stats =
      (fun () ->
        let descs = ref [] in
        Group_table.iter t.groups (fun g ->
            descs :=
              { Of_msg.Stats.group_id = g.Group_table.group_id;
                group_type = g.Group_table.group_type;
                buckets = g.Group_table.buckets }
              :: !descs);
        List.sort
          (fun (a : Of_msg.Stats.group_desc) b -> compare a.group_id b.group_id)
          !descs);
    telemetry =
      (fun () ->
        match t.sampler with
        | None -> Of_msg.Telemetry.empty
        | Some s ->
          let r = Scotch_telemetry.Sampler.report s ~now:(now t) in
          { Of_msg.Telemetry.rate = r.Scotch_telemetry.Sampler.r_rate;
            window = r.Scotch_telemetry.Sampler.r_window;
            seen = r.Scotch_telemetry.Sampler.r_seen;
            sampled = r.Scotch_telemetry.Sampler.r_sampled;
            records =
              List.map
                (fun (key, sampled) -> { Of_msg.Telemetry.key; sampled })
                r.Scotch_telemetry.Sampler.r_records });
    on_flow_mod_rejected =
      (fun () ->
        let stall = t.profile.Profile.tcam_reject_stall in
        if stall > 0.0 then
          t.dp_blocked_until <- Stdlib.max t.dp_blocked_until (now t) +. stall) }

(** [create engine ~dpid ~name ~profile ~num_tables ()] builds a switch
    with [num_tables] flow tables (Scotch's two-table miss pipeline
    needs at least 2). *)
let create engine ~dpid ~name ~profile ?(num_tables = 2) () =
  let tables =
    Array.init num_tables (fun i ->
        Flow_table.create ~capacity:profile.Profile.flow_table_capacity ~table_id:i ())
  in
  let t =
    { engine; dpid; name; profile; tables; groups = Group_table.create ();
      ports = Hashtbl.create 16; ofa = None;
      dp_bucket = Token_bucket.create ~rate:profile.Profile.datapath_pps
          ~burst:(Stdlib.max 32.0 (profile.Profile.datapath_pps /. 1000.0));
      dp_blocked_until = 0.0; failed = false;
      counters =
        { rx = 0; tx = 0; dropped_blocked = 0; dropped_capacity = 0; dropped_no_rule = 0;
          dropped_action = 0 };
      sampler = None; on_update = None;
      hot_miss = Scotch_obs.Obs.hot_site ();
      hot_punt = Scotch_obs.Obs.hot_site () }
  in
  (* golden-ratio phase spread: devices' maintenance windows never line
     up, whatever the dpid pattern *)
  let housekeeping_phase =
    Float.rem (0.6180339887 *. float_of_int dpid *. profile.Profile.housekeeping_period)
      (Stdlib.max profile.Profile.housekeeping_period 1e-9)
  in
  t.ofa <-
    Some (Ofa.create ~housekeeping_phase ~jitter_seed:dpid ~dpid engine ~profile
            ~handler:(handler_of t));
  (* re-express the data-plane ledger on the metrics registry (pulled at
     snapshot time; the receive hot path is untouched) *)
  let module O = Scotch_obs.Obs in
  let labels = [ ("dpid", string_of_int dpid) ] in
  let c = t.counters in
  O.counter_fn ~help:"Packets entering the data plane" ~labels "scotch_switch_rx_total"
    (fun () -> c.rx);
  O.counter_fn ~help:"Packets transmitted" ~labels "scotch_switch_tx_total" (fun () -> c.tx);
  O.counter_fn ~help:"Data-plane drops" ~labels:(("reason", "blocked") :: labels)
    "scotch_switch_dropped_total" (fun () -> c.dropped_blocked);
  O.counter_fn ~help:"Data-plane drops" ~labels:(("reason", "capacity") :: labels)
    "scotch_switch_dropped_total" (fun () -> c.dropped_capacity);
  O.counter_fn ~help:"Data-plane drops" ~labels:(("reason", "no-rule") :: labels)
    "scotch_switch_dropped_total" (fun () -> c.dropped_no_rule);
  O.counter_fn ~help:"Data-plane drops" ~labels:(("reason", "action") :: labels)
    "scotch_switch_dropped_total" (fun () -> c.dropped_action);
  t

(** [add_port t ~port_id ?kind link] attaches an outgoing link on a
    port.  The peer is whatever the link's sink delivers to. *)
let add_port t ~port_id ?(kind = Normal) ?(encap = Mpls_tunnel) link =
  if Hashtbl.mem t.ports port_id then invalid_arg "Switch.add_port: duplicate port";
  Hashtbl.replace t.ports port_id { port_id; kind; encap; out = Some link }

(** Declare an input-only port (e.g. where only the peer sends). *)
let add_input_port t ~port_id ?(kind = Normal) ?(encap = Mpls_tunnel) () =
  if Hashtbl.mem t.ports port_id then invalid_arg "Switch.add_input_port: duplicate port";
  Hashtbl.replace t.ports port_id { port_id; kind; encap; out = None }

(** Failure injection: kill or revive both planes of the switch. *)
let set_failed t failed =
  t.failed <- failed;
  Ofa.set_dead (ofa t) failed;
  notify_update t (Liveness_changed failed)

let is_failed t = t.failed

(** The outgoing link attached to a port, if any (fault injection:
    link-flap targets are addressed as (switch, port)). *)
let link_of_port t port_id =
  match find_port t port_id with None -> None | Some p -> p.out

(** Ids of the switch's normal (non-tunnel) ports, sorted. *)
let normal_ports t =
  Hashtbl.fold (fun pid p acc -> if p.kind = Normal then pid :: acc else acc) t.ports []
  |> List.sort compare

(** Ids of all ports, sorted. *)
let all_ports t = Hashtbl.fold (fun pid _ acc -> pid :: acc) t.ports [] |> List.sort compare

(** Every port with its kind and outgoing link, sorted by port id — the
    port half of a verification snapshot.  [None] link means the port is
    input-only (or administratively dark). *)
let ports_snapshot t =
  Hashtbl.fold (fun pid p acc -> (pid, p.kind, p.out) :: acc) t.ports []
  |> List.sort (fun (a, _, _) (b, _, _) -> compare a b)

let dpid t = t.dpid
let name t = t.name

(** Attach (or detach, with [None]) the telemetry sampler feeding off
    the receive path.  [None] — the default — leaves the datapath
    byte-identical to a telemetry-free build. *)
let set_sampler t s = t.sampler <- s

let sampler t = t.sampler

(** Attach (or detach, with [None]) a dataplane-update observer, fired
    synchronously after every applied rule mutation, group-mod or
    liveness flip.  Table events come straight from each
    {!Flow_table.set_on_change} tap, which this call wires (or clears),
    so the default [None] keeps the flow tables observer-free. *)
let set_on_update t f =
  t.on_update <- f;
  Array.iter
    (fun tbl ->
      Flow_table.set_on_change tbl
        (match f with
        | None -> None
        | Some _ ->
          let table_id = Flow_table.table_id tbl in
          Some
            (fun ch ->
              let added, removed =
                match ch with
                | Flow_table.Rule_added r -> ([ r ], [])
                | Flow_table.Rule_removed r -> ([], [ r ])
              in
              notify_update t (Table_changed { table_id; added; removed }))))
    t.tables
let profile t = t.profile
let counters t = t.counters
let tables t = t.tables
let table t i = t.tables.(i)
let group_table t = t.groups

(** Direct (test) access: install a rule bypassing the OFA. *)
let install_direct t ~table_id ~priority ~match_ ~instructions ?(idle_timeout = 0.0)
    ?(hard_timeout = 0.0) ?(cookie = Of_types.cookie_none) () =
  Flow_table.insert t.tables.(table_id) ~now:(now t) ~priority ~match_ ~instructions
    ~idle_timeout ~hard_timeout ~cookie

let pp fmt t = Format.fprintf fmt "switch{%s dpid=%d %a}" t.name t.dpid Profile.pp t.profile

(** Time until which the forwarding pipeline is stalled by TCAM writes
    (observability; equals [now] or earlier when not stalled). *)
let blocked_until t = t.dp_blocked_until
