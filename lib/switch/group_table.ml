(** OpenFlow group table.

    Scotch uses {e select} groups for load-balancing new flows across
    vswitch tunnels (§5.1): one action bucket per tunnel, bucket chosen
    by a hash of the flow id — "using a hash function based on the flow
    id may be a likely choice for many vendors" — so all packets of a
    flow take the same tunnel. *)

open Scotch_openflow

type group = {
  group_id : Of_types.group_id;
  group_type : Of_msg.Group_mod.group_type;
  mutable buckets : Of_msg.Group_mod.bucket list;
}

type t = { groups : (Of_types.group_id, group) Hashtbl.t }

let create () = { groups = Hashtbl.create 16 }

(** [Add]/[Modify] validation: a group with no buckets, or a bucket
    with a non-positive weight, would silently blackhole (or skew) every
    flow hashed onto it — real switches reject such Group_mods with
    OFPGMFC_INVALID_GROUP, and so do we. *)
let validate_buckets (gm : Of_msg.Group_mod.t) =
  if gm.buckets = [] then Error `Empty_buckets
  else if List.exists (fun b -> b.Of_msg.Group_mod.weight <= 0) gm.buckets then
    Error `Non_positive_weight
  else Ok ()

let apply t (gm : Of_msg.Group_mod.t) =
  match gm.command with
  | Add -> (
    match validate_buckets gm with
    | Error _ as e -> e
    | Ok () ->
      if Hashtbl.mem t.groups gm.group_id then Error `Group_exists
      else begin
        Hashtbl.replace t.groups gm.group_id
          { group_id = gm.group_id; group_type = gm.group_type; buckets = gm.buckets };
        Ok ()
      end)
  | Modify -> (
    (* existence first, as switches do: modifying an unknown group is
       Unknown_group even when the buckets are also bad *)
    match Hashtbl.find_opt t.groups gm.group_id with
    | None -> Error `Unknown_group
    | Some g -> (
      match validate_buckets gm with
      | Error _ as e -> e
      | Ok () ->
        g.buckets <- gm.buckets;
        Ok ()))
  | Delete ->
    Hashtbl.remove t.groups gm.group_id;
    Ok ()

let find t gid = Hashtbl.find_opt t.groups gid

(** [select_bucket g ~flow_hash] picks the bucket for a flow.  Select
    groups hash the flow onto the weighted bucket list; [All] returns
    every bucket; [Indirect] and [Fast_failover] use the first. *)
let select_bucket g ~flow_hash : Of_msg.Group_mod.bucket list =
  match (g.group_type, g.buckets) with
  | _, [] -> []
  | Of_msg.Group_mod.All, buckets -> buckets
  | (Of_msg.Group_mod.Indirect | Of_msg.Group_mod.Fast_failover), b :: _ -> [ b ]
  | Of_msg.Group_mod.Select, buckets ->
    let total = List.fold_left (fun acc b -> acc + max 1 b.Of_msg.Group_mod.weight) 0 buckets in
    let target = flow_hash mod total in
    let rec go acc = function
      | [] -> [ List.hd buckets ]
      | b :: rest ->
        let acc = acc + max 1 b.Of_msg.Group_mod.weight in
        if target < acc then [ b ] else go acc rest
    in
    go 0 buckets

let size t = Hashtbl.length t.groups

let iter t f = Hashtbl.iter (fun _ g -> f g) t.groups
