(** OpenFlow group table.  Scotch uses {e select} groups to
    load-balance new flows across vswitch tunnels (§5.1): one bucket
    per tunnel, bucket chosen by a hash of the flow id so all packets
    of a flow take the same tunnel. *)

open Scotch_openflow

type group = {
  group_id : Of_types.group_id;
  group_type : Of_msg.Group_mod.group_type;
  mutable buckets : Of_msg.Group_mod.bucket list;
}

type t

val create : unit -> t

(** Apply a Group_mod.  [Add]/[Modify] with an empty bucket list or a
    non-positive bucket weight are rejected (they would blackhole or
    skew every flow hashed onto the group), mirroring
    OFPGMFC_INVALID_GROUP on real switches. *)
val apply :
  t -> Of_msg.Group_mod.t ->
  (unit, [ `Group_exists | `Unknown_group | `Empty_buckets | `Non_positive_weight ]) result

val find : t -> Of_types.group_id -> group option

(** Buckets to execute for a flow: [Select] hashes onto the weighted
    bucket list, [All] returns every bucket, [Indirect]/[Fast_failover]
    the first. *)
val select_bucket : group -> flow_hash:int -> Of_msg.Group_mod.bucket list

val size : t -> int
val iter : t -> (group -> unit) -> unit
