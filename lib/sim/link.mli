(** Point-to-point simplex link with bandwidth, propagation delay and a
    drop-tail queue.

    Transmission is a busy server: a packet occupies the link for
    [size / bandwidth] seconds, then arrives [latency] seconds later at
    the sink; propagation overlaps with the next transmission.  When
    more than [queue_capacity] packets wait, the tail is dropped. *)

type t

(** Raises [Invalid_argument] on non-positive bandwidth or negative
    latency. *)
val create :
  Engine.t ->
  name:string ->
  bandwidth_bps:float ->
  latency:float ->
  queue_capacity:int ->
  t

(** Set the function receiving delivered packets. *)
val connect : t -> (Scotch_packet.Packet.t -> unit) -> unit

(** Enqueue a packet for transmission; drops (and counts) when the
    queue is full or the link is administratively down. *)
val send : t -> Scotch_packet.Packet.t -> unit

(** Administrative state (fault injection).  Taking a link down empties
    its queue — in-flight packets are lost, like a cable pull. *)
val set_up : t -> bool -> unit

val is_up : t -> bool

val name : t -> string
val delivered : t -> int
val dropped : t -> int

(** Packets lost while the link was down (link-flap faults). *)
val dropped_down : t -> int
val bytes_delivered : t -> int
val queue_length : t -> int
val latency : t -> float
val bandwidth_bps : t -> float

(** Convenience bandwidth constants. *)
val gbps : float -> float

val mbps : float -> float
