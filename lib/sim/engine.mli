(** Discrete-event simulation engine.

    Events are closures ordered by (time, sequence); the sequence number
    makes simultaneous events fire in scheduling order, so runs are
    fully deterministic.  One engine owns the master PRNG from which all
    traffic sources split their streams. *)

type t

(** Handle for cancelling a scheduled event. *)
type handle

(** [create ~seed ()] makes an engine at time 0. *)
val create : ?seed:int -> unit -> t

(** Current simulation time, in seconds. *)
val now : t -> float

(** Master PRNG; call {!Scotch_util.Rng.split} to derive per-source
    streams. *)
val rng : t -> Scotch_util.Rng.t

(** Number of events executed so far. *)
val processed : t -> int

(** [schedule_at t ~at f] runs [f] at absolute time [at].  Raises
    [Invalid_argument] when [at] is in the past. *)
val schedule_at : t -> at:float -> (unit -> unit) -> handle

(** [schedule t ~delay f] runs [f] after [delay] seconds.  Raises
    [Invalid_argument] on negative delays. *)
val schedule : t -> delay:float -> (unit -> unit) -> handle

(** Prevent a scheduled event from running; O(1). *)
val cancel : handle -> unit

(** Execute the next event; [false] when the queue is empty. *)
val step : t -> bool

(** [run ?until t] executes events in order until the queue drains or
    simulation time would exceed [until]; when stopped by [until] the
    clock is advanced exactly to it and remaining events stay queued. *)
val run : ?until:float -> t -> unit

(** [on_run_end t f] registers [f] to run (in registration order) every
    time {!run} returns — the quiesced-network moment debug-mode
    verification lints at. *)
val on_run_end : t -> (unit -> unit) -> unit

(** [every t ~period ?start ?until f] runs [f] every [period] seconds
    starting at [now + start] (default [now + period]); [start] phases
    periodic tasks sharing a period apart from each other.  Returns a
    stop function. *)
val every :
  t -> period:float -> ?start:float -> ?until:float -> (unit -> unit) -> unit -> unit

(** Pending event count (cancelled events included until popped). *)
val pending : t -> int

(** Engine-scoped unique small integers, for allocations that must be
    deterministic per run (e.g. traffic sources' ephemeral-port
    windows) rather than global to the process. *)
val fresh_user_id : t -> int
