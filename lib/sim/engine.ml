(** Discrete-event simulation engine.

    Events are closures ordered by (time, sequence); the sequence number
    makes simultaneous events fire in scheduling order, so runs are
    fully deterministic.  One engine owns the master PRNG from which all
    traffic sources split their streams. *)

open Scotch_util

type event = {
  at : float;
  seq : int;
  mutable cancelled : bool;
  run : unit -> unit;
}

(** Handle returned by {!schedule}; allows cancellation (e.g. pending
    rule-timeout events when a rule is re-installed). *)
type handle = event

type t = {
  mutable now : float;
  mutable next_seq : int;
  events : event Heap.t;
  rng : Rng.t;
  mutable processed : int;
  mutable next_user_id : int;
  mutable run_end_hooks : (unit -> unit) list;
}

let compare_events a b =
  match Float.compare a.at b.at with 0 -> Int.compare a.seq b.seq | c -> c

(** [create ~seed ()] makes an engine at time 0. *)
let create ?(seed = 42) () =
  { now = 0.0; next_seq = 0; events = Heap.create ~cmp:compare_events;
    rng = Rng.create seed; processed = 0; next_user_id = 0; run_end_hooks = [] }

(** Current simulation time, in seconds. *)
let now t = t.now

(** Master PRNG; call {!Scotch_util.Rng.split} to derive per-source
    streams. *)
let rng t = t.rng

(** Number of events executed so far. *)
let processed t = t.processed

(** [schedule_at t ~at f] runs [f] at absolute time [at].  Scheduling in
    the past raises [Invalid_argument]. *)
let schedule_at t ~at run =
  if at < t.now then
    invalid_arg
      (Printf.sprintf "Engine.schedule_at: %.9f is before current time %.9f" at t.now);
  let ev = { at; seq = t.next_seq; cancelled = false; run } in
  t.next_seq <- t.next_seq + 1;
  Heap.push t.events ev;
  ev

(** [schedule t ~delay f] runs [f] after [delay] seconds. *)
let schedule t ~delay run =
  if delay < 0.0 then invalid_arg "Engine.schedule: negative delay";
  schedule_at t ~at:(t.now +. delay) run

(** [cancel h] prevents a scheduled event from running (O(1); the slot is
    skipped at pop time). *)
let cancel (h : handle) = h.cancelled <- true

(** [step t] executes the next event; [false] when the queue is empty. *)
let step t =
  match Heap.pop t.events with
  | None -> false
  | Some ev ->
    if not ev.cancelled then begin
      t.now <- ev.at;
      t.processed <- t.processed + 1;
      ev.run ()
    end
    else t.now <- ev.at;
    true

(** [run ?until t] executes events in order until the queue drains or
    simulation time would exceed [until].  When stopped by [until], the
    clock is advanced exactly to [until] and remaining events stay
    queued. *)
let run ?until t =
  let continue () =
    match (until, Heap.peek t.events) with
    | _, None -> false
    | None, Some _ -> true
    | Some limit, Some ev -> ev.at <= limit
  in
  while continue () do
    ignore (step t)
  done;
  (match until with Some limit when limit > t.now -> t.now <- limit | _ -> ());
  List.iter (fun f -> f ()) (List.rev t.run_end_hooks)

(** [on_run_end t f] registers [f] to run (in registration order) every
    time {!run} returns — the quiesced-network moment the verification
    hooks lint at.  Hooks must not schedule further events they expect
    this {!run} to execute. *)
let on_run_end t f = t.run_end_hooks <- f :: t.run_end_hooks

(** [every t ~period ?start ?until f] runs [f] every [period] seconds
    starting at [now + start] (default [now + period]), stopping after
    [until] (if given).  [start] lets periodic tasks sharing a period
    (heartbeat, stats polling, reconciliation) interleave at distinct
    phases instead of stacking on the same instants.  Returns a stop
    function. *)
let every t ~period ?start ?until f =
  if period <= 0.0 then invalid_arg "Engine.every: period must be positive";
  let first = Option.value start ~default:period in
  if first < 0.0 then invalid_arg "Engine.every: start must be non-negative";
  let stopped = ref false in
  let rec tick () =
    if not !stopped then begin
      match until with
      | Some u when t.now > u -> ()
      | _ ->
        f ();
        ignore (schedule t ~delay:period tick)
    end
  in
  ignore (schedule t ~delay:first tick);
  fun () -> stopped := true

(** Pending event count (cancelled events included until popped). *)
let pending t = Heap.length t.events

(** Engine-scoped unique small integers, for allocations that must be
    deterministic per run (e.g. traffic sources' ephemeral-port
    windows) rather than global to the process. *)
let fresh_user_id t =
  let i = t.next_user_id in
  t.next_user_id <- i + 1;
  i
