(** Point-to-point simplex link with bandwidth, propagation delay and a
    drop-tail queue.

    Transmission is modeled as a busy server: a packet occupies the link
    for [size / bandwidth] seconds, then arrives [latency] seconds later
    at the sink.  When more than [queue_capacity] packets are waiting
    the tail is dropped (counted).  The testbed links (1/10 GbE data
    ports, 1 GbE management ports, §3.2) are instances of this. *)

open Scotch_packet

type stats = {
  mutable delivered : int;
  mutable dropped : int;
  mutable bytes : int;
  mutable dropped_down : int; (* lost while the link was administratively down *)
}

type t = {
  engine : Engine.t;
  name : string;
  bandwidth_bps : float;       (* bits per second *)
  latency : float;             (* propagation delay, seconds *)
  queue_capacity : int;        (* packets *)
  queue : Packet.t Queue.t;
  mutable busy : bool;
  mutable up : bool; (* fault injection: a down link loses every packet *)
  mutable sink : Packet.t -> unit;
  stats : stats;
}

(** [create engine ~name ~bandwidth_bps ~latency ~queue_capacity] makes
    an idle link.  Attach the receiver with {!connect}. *)
let create engine ~name ~bandwidth_bps ~latency ~queue_capacity =
  if bandwidth_bps <= 0.0 then invalid_arg "Link.create: bandwidth must be positive";
  if latency < 0.0 then invalid_arg "Link.create: negative latency";
  { engine; name; bandwidth_bps; latency; queue_capacity; queue = Queue.create ();
    busy = false; up = true; sink = (fun _ -> ());
    stats = { delivered = 0; dropped = 0; bytes = 0; dropped_down = 0 } }

(** [connect t sink] sets the function receiving delivered packets. *)
let connect t sink = t.sink <- sink

let transmission_time t pkt =
  float_of_int (Packet.size pkt * 8) /. t.bandwidth_bps

let rec start_transmission t =
  match Queue.take_opt t.queue with
  | None -> t.busy <- false
  | Some pkt ->
    t.busy <- true;
    let tx = transmission_time t pkt in
    ignore
      (Engine.schedule t.engine ~delay:tx (fun () ->
           (* Packet leaves the transmitter; propagation runs in parallel
              with the next transmission. *)
           t.stats.delivered <- t.stats.delivered + 1;
           t.stats.bytes <- t.stats.bytes + Packet.size pkt;
           ignore (Engine.schedule t.engine ~delay:t.latency (fun () -> t.sink pkt));
           start_transmission t))

(** [send t pkt] enqueues [pkt] for transmission; drops (and counts) when
    the queue is full or the link is down (link-flap fault injection). *)
let send t pkt =
  if not t.up then t.stats.dropped_down <- t.stats.dropped_down + 1
  else if t.busy then begin
    if Queue.length t.queue >= t.queue_capacity then t.stats.dropped <- t.stats.dropped + 1
    else Queue.push pkt t.queue
  end
  else begin
    Queue.push pkt t.queue;
    start_transmission t
  end

(** Administrative state (fault injection).  Taking a link down empties
    its queue — in-flight packets are lost, exactly like a cable pull;
    bringing it back up restores service for subsequent sends. *)
let set_up t up =
  t.up <- up;
  if not up then begin
    t.stats.dropped_down <- t.stats.dropped_down + Queue.length t.queue;
    Queue.clear t.queue
  end

let is_up t = t.up

let name t = t.name
let delivered t = t.stats.delivered
let dropped t = t.stats.dropped
let dropped_down t = t.stats.dropped_down
let bytes_delivered t = t.stats.bytes
let queue_length t = Queue.length t.queue
let latency t = t.latency
let bandwidth_bps t = t.bandwidth_bps

(** Convenience bandwidth constants. *)
let gbps g = g *. 1e9
let mbps m = m *. 1e6
