(* Tests for Scotch_controller: connection, message dispatch, xid-routed
   replies, Packet-In rate metering, heartbeats, and the reactive
   routing application end to end. *)

open Scotch_switch
open Scotch_topo
open Scotch_openflow
open Scotch_packet
module C = Scotch_controller.Controller

let fast_profile =
  { Profile.open_vswitch with Profile.forward_latency = 0.0; datapath_pps = 1e9 }

(* single switch, two hosts, controller (no app unless added) *)
let rig () =
  let e = Scotch_sim.Engine.create () in
  let topo = Topology.create e in
  let sw = Switch.create e ~dpid:1 ~name:"s" ~profile:fast_profile () in
  Topology.add_switch topo sw;
  let a = Host.create e ~id:1 ~name:"a" in
  let b = Host.create e ~id:2 ~name:"b" in
  Topology.add_host topo a;
  Topology.add_host topo b;
  Topology.attach_host topo a sw ~port:1;
  Topology.attach_host topo b sw ~port:2;
  let ctrl = C.create e topo in
  (e, topo, sw, a, b, ctrl)

let mk_packet ?(flow_id = 1) ?(src_port = 1000) ~src ~dst () =
  Packet.tcp_syn ~flow_id ~created:0.0 ~src_mac:(Host.mac src) ~dst_mac:(Host.mac dst)
    ~ip_src:(Host.ip src) ~ip_dst:(Host.ip dst) ~src_port ~dst_port:80 ()

let test_connect_duplicate () =
  let _, _, sw, _, _, ctrl = rig () in
  ignore (C.connect ctrl sw ~latency:0.001);
  Alcotest.(check bool) "duplicate rejected" true
    (try
       ignore (C.connect ctrl sw ~latency:0.001);
       false
     with Invalid_argument _ -> true)

let test_install_reaches_switch () =
  let e, _, sw, a, b, ctrl = rig () in
  let h = C.connect ctrl sw ~latency:0.001 in
  C.install ctrl h ~priority:10
    ~match_:(Of_match.exact_flow (Packet.flow_key (mk_packet ~src:a ~dst:b ())))
    ~instructions:(Of_action.output (Of_types.Port_no.Physical 2))
    ();
  Scotch_sim.Engine.run e;
  Alcotest.(check int) "rule installed" 1 (Flow_table.size (Switch.table sw 0) ~now:1.0);
  Alcotest.(check int) "flow_mods counter" 1 (C.counters ctrl).C.flow_mods

let test_uninstall () =
  let e, _, sw, a, b, ctrl = rig () in
  let h = C.connect ctrl sw ~latency:0.001 in
  let m = Of_match.exact_flow (Packet.flow_key (mk_packet ~src:a ~dst:b ())) in
  C.install ctrl h ~priority:10 ~match_:m
    ~instructions:(Of_action.output (Of_types.Port_no.Physical 2))
    ();
  Scotch_sim.Engine.run e;
  C.uninstall ctrl h ~match_:m ();
  Scotch_sim.Engine.run e;
  Alcotest.(check int) "rule removed" 0 (Flow_table.size (Switch.table sw 0) ~now:1.0)

let test_request_reply_xid () =
  let e, _, sw, _, _, ctrl = rig () in
  let h = C.connect ctrl sw ~latency:0.001 in
  let got = ref None in
  C.request ctrl h Of_msg.Table_stats_request (fun payload -> got := Some payload);
  Scotch_sim.Engine.run e;
  match !got with
  | Some (Of_msg.Table_stats_reply { active_entries }) ->
    Alcotest.(check int) "two tables" 2 (List.length active_entries)
  | _ -> Alcotest.fail "no reply routed"

let test_packet_in_dispatch_order () =
  let e, _, sw, a, b, ctrl = rig () in
  let log = ref [] in
  C.register_app ctrl
    (C.app "first"
       ~packet_in:(fun _ _ ->
         log := "first" :: !log;
         false));
  C.register_app ctrl
    (C.app "second"
       ~packet_in:(fun _ _ ->
         log := "second" :: !log;
         true));
  C.register_app ctrl
    (C.app "third"
       ~packet_in:(fun _ _ ->
         log := "third" :: !log;
         true));
  let h = C.connect ctrl sw ~latency:0.001 in
  Scotch_controller.Routing.install_table_miss ctrl h;
  Scotch_sim.Engine.run e;
  Switch.receive sw ~in_port:1 (mk_packet ~src:a ~dst:b ());
  Scotch_sim.Engine.run e;
  Alcotest.(check (list string)) "chain stops at handler" [ "first"; "second" ] (List.rev !log);
  Alcotest.(check int) "packet_ins counted" 1 (C.counters ctrl).C.packet_ins;
  Alcotest.(check int) "none unhandled" 0 (C.counters ctrl).C.unhandled_packet_ins

let test_unhandled_packet_in () =
  let e, _, sw, a, b, ctrl = rig () in
  let h = C.connect ctrl sw ~latency:0.001 in
  Scotch_controller.Routing.install_table_miss ctrl h;
  Scotch_sim.Engine.run e;
  Switch.receive sw ~in_port:1 (mk_packet ~src:a ~dst:b ());
  Scotch_sim.Engine.run e;
  Alcotest.(check int) "unhandled counted" 1 (C.counters ctrl).C.unhandled_packet_ins

let test_pin_rate_meter () =
  let e, _, sw, a, b, ctrl = rig () in
  let h = C.connect ctrl sw ~latency:0.001 in
  Scotch_controller.Routing.install_table_miss ctrl h;
  Scotch_sim.Engine.run e;
  (* 50 distinct new flows in 0.5 s -> rate ~ 50/s over a 1 s window *)
  for i = 1 to 50 do
    ignore
      (Scotch_sim.Engine.schedule_at e ~at:(0.5 +. (0.01 *. float_of_int i)) (fun () ->
           Switch.receive sw ~in_port:1 (mk_packet ~flow_id:i ~src_port:(1000 + i) ~src:a ~dst:b ())))
  done;
  Scotch_sim.Engine.run ~until:1.1 e;
  let rate = C.pin_rate ctrl h in
  Alcotest.(check bool) "rate ~50/s" true (rate > 40.0 && rate <= 55.0)

let test_heartbeat_detects_death () =
  let e, _, sw, _, _, ctrl = rig () in
  let died = ref [] in
  C.register_app ctrl (C.app "watch" ~switch_dead:(fun s -> died := s.C.dpid :: !died));
  let _h = C.connect ctrl sw ~latency:0.001 in
  C.start_heartbeat ctrl ~period:0.5 ~timeout:1.5;
  (* healthy for 3 s, then the agent dies *)
  ignore (Scotch_sim.Engine.schedule_at e ~at:3.0 (fun () -> Switch.set_failed sw true));
  Scotch_sim.Engine.run ~until:3.0 e;
  Alcotest.(check (list int)) "alive so far" [] !died;
  Scotch_sim.Engine.run ~until:6.0 e;
  Alcotest.(check (list int)) "death detected once" [ 1 ] !died

(* ------------------------------------------------------------------ *)
(* Reactive routing app *)

let test_routing_end_to_end () =
  let e, _, sw, a, b, ctrl = rig () in
  let routing = Scotch_controller.Routing.create ctrl in
  C.register_app ctrl (Scotch_controller.Routing.app routing);
  let h = C.connect ctrl sw ~latency:0.001 in
  Scotch_controller.Routing.install_table_miss ctrl h;
  Scotch_sim.Engine.run e;
  Switch.receive sw ~in_port:1 (mk_packet ~src:a ~dst:b ());
  Scotch_sim.Engine.run e;
  (* first packet delivered by Packet-Out *)
  Alcotest.(check int) "first packet delivered" 1 (Host.received_packets b);
  Alcotest.(check int) "flow admitted" 1 (Scotch_controller.Routing.flows_admitted routing);
  (* subsequent packet forwarded by the installed rule, no new Packet-In *)
  let pins_before = (C.counters ctrl).C.packet_ins in
  Switch.receive sw ~in_port:1 (mk_packet ~src:a ~dst:b ());
  Scotch_sim.Engine.run e;
  Alcotest.(check int) "second packet delivered" 2 (Host.received_packets b);
  Alcotest.(check int) "no extra packet-in" pins_before (C.counters ctrl).C.packet_ins

let test_routing_unroutable () =
  let e, _, sw, a, _, ctrl = rig () in
  let routing = Scotch_controller.Routing.create ctrl in
  C.register_app ctrl (Scotch_controller.Routing.app routing);
  let h = C.connect ctrl sw ~latency:0.001 in
  Scotch_controller.Routing.install_table_miss ctrl h;
  Scotch_sim.Engine.run e;
  (* destination 203.0.113.1 is not attached anywhere *)
  let pkt =
    Packet.tcp_syn ~flow_id:9 ~created:0.0 ~src_mac:(Host.mac a) ~dst_mac:Mac.broadcast
      ~ip_src:(Host.ip a) ~ip_dst:(Ipv4_addr.make 203 0 113 1) ~src_port:5 ~dst_port:80 ()
  in
  Switch.receive sw ~in_port:1 pkt;
  Scotch_sim.Engine.run e;
  Alcotest.(check int) "unroutable counted" 1 (Scotch_controller.Routing.flows_unroutable routing)

let test_routing_ignores_tunneled () =
  let e, _, sw, a, b, ctrl = rig () in
  let routing = Scotch_controller.Routing.create ctrl in
  C.register_app ctrl (Scotch_controller.Routing.app routing);
  let h = C.connect ctrl sw ~latency:0.001 in
  ignore h;
  Scotch_sim.Engine.run e;
  (* simulate a tunneled Packet-In: the routing app must not claim it *)
  let pi =
    Of_msg.Packet_in.make ~tunnel_id:5 ~reason:Of_types.Packet_in_reason.No_match ~in_port:1
      (mk_packet ~src:a ~dst:b ())
  in
  Alcotest.(check bool) "left to the Scotch app" false
    (Scotch_controller.Routing.handle_packet_in routing (C.switch_exn ctrl 1) pi)

let () =
  Alcotest.run "scotch_controller"
    [ ( "core",
        [ Alcotest.test_case "duplicate connect" `Quick test_connect_duplicate;
          Alcotest.test_case "install reaches switch" `Quick test_install_reaches_switch;
          Alcotest.test_case "uninstall" `Quick test_uninstall;
          Alcotest.test_case "request/reply xid" `Quick test_request_reply_xid;
          Alcotest.test_case "dispatch order" `Quick test_packet_in_dispatch_order;
          Alcotest.test_case "unhandled packet-in" `Quick test_unhandled_packet_in;
          Alcotest.test_case "pin rate meter" `Quick test_pin_rate_meter;
          Alcotest.test_case "heartbeat death detection" `Quick test_heartbeat_detects_death ] );
      ( "routing",
        [ Alcotest.test_case "reactive end-to-end" `Quick test_routing_end_to_end;
          Alcotest.test_case "unroutable" `Quick test_routing_unroutable;
          Alcotest.test_case "ignores tunneled" `Quick test_routing_ignores_tunneled ] ) ]
