test/test_packet.ml: Alcotest Array Bytes Codec Encap Ethernet Flow_key Format Headers Int32 Ipv4 Ipv4_addr L4 List Mac Packet QCheck QCheck_alcotest Scotch_packet Scotch_util Tcp Udp
