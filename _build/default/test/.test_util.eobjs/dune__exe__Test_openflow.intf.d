test/test_openflow.mli:
