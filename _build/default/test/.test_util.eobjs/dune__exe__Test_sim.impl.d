test/test_sim.ml: Alcotest Engine Ipv4_addr Link List Mac Packet Scotch_packet Scotch_sim
