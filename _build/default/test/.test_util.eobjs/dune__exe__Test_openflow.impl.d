test/test_openflow.ml: Alcotest Bytes Format Headers Int32 Ipv4_addr List Mac Of_action Of_match Of_msg Of_types Of_wire Packet QCheck QCheck_alcotest Scotch_openflow Scotch_packet
