test/test_util.ml: Alcotest Array Fun Heap Histogram List QCheck QCheck_alcotest Rng Scotch_util Stats String Table_printer Timeseries Token_bucket
