test/test_workload.ml: Alcotest Array Flow_gen Host List Printf Rng Scotch_packet Scotch_sim Scotch_topo Scotch_util Scotch_workload Sizes Source Tracegen
