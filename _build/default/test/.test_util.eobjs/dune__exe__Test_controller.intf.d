test/test_controller.mli:
