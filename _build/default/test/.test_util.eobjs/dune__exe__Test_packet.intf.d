test/test_packet.mli:
