(* Tests for Scotch_workload: flow generation, traffic sources, size
   distributions and the trace generator/replayer. *)

open Scotch_workload
open Scotch_topo
open Scotch_util

(* a zero-network rig: two hosts wired back to back *)
let rig () =
  let e = Scotch_sim.Engine.create () in
  let a = Host.create e ~id:1 ~name:"a" in
  let b = Host.create e ~id:2 ~name:"b" in
  (* a's uplink delivers straight to b *)
  let link = Scotch_sim.Link.create e ~name:"direct" ~bandwidth_bps:1e12 ~latency:1e-6 ~queue_capacity:100000 in
  Scotch_sim.Link.connect link (fun pkt -> Host.deliver b pkt);
  Host.set_uplink a link;
  (e, a, b)

let test_fresh_flow_ids () =
  let a = Flow_gen.fresh_flow_id () in
  let b = Flow_gen.fresh_flow_id () in
  Alcotest.(check bool) "monotone" true (b > a)

let test_source_constant_rate () =
  let e, a, b = rig () in
  let src =
    Source.create e ~rng:(Rng.create 1) ~host:a ~dst:b ~rate:100.0 ~arrival:Source.Constant ()
  in
  Source.start src;
  Scotch_sim.Engine.run ~until:2.0 e;
  Alcotest.(check bool) "~200 flows in 2 s" true
    (abs (Source.launched_count src - 200) <= 1)

let test_source_poisson_rate () =
  let e, a, b = rig () in
  let src = Source.create e ~rng:(Rng.create 2) ~host:a ~dst:b ~rate:200.0 () in
  Source.start src;
  Scotch_sim.Engine.run ~until:5.0 e;
  let n = Source.launched_count src in
  Alcotest.(check bool) "~1000 flows" true (n > 850 && n < 1150)

let test_source_stop () =
  let e, a, b = rig () in
  let src = Source.create e ~rng:(Rng.create 3) ~host:a ~dst:b ~rate:100.0 () in
  Source.start src;
  ignore (Scotch_sim.Engine.schedule_at e ~at:1.0 (fun () -> Source.stop src));
  Scotch_sim.Engine.run ~until:3.0 e;
  let n = Source.launched_count src in
  Alcotest.(check bool) "stopped early" true (n < 150)

let test_source_flow_completes_after_stop () =
  let e, a, b = rig () in
  let src = Source.create e ~rng:(Rng.create 4) ~host:a ~dst:b ~rate:1.0 () in
  let l =
    Source.launch_flow src ~spec:{ Flow_gen.packets = 50; payload = 10; interval = 0.1 }
  in
  Source.stop src;
  Scotch_sim.Engine.run e;
  match Host.flow_record b l.Flow_gen.flow_id with
  | Some r -> Alcotest.(check int) "all packets sent" 50 r.Host.packets
  | None -> Alcotest.fail "flow not delivered"

let test_source_spoofing_unique_sources () =
  let e, a, b = rig () in
  let src = Source.create e ~rng:(Rng.create 5) ~host:a ~dst:b ~rate:100.0 ~spoof_sources:true () in
  Source.start src;
  Scotch_sim.Engine.run ~until:1.0 e;
  let ips =
    List.map (fun (l : Flow_gen.launched) -> l.Flow_gen.key.Scotch_packet.Flow_key.ip_src)
      (Source.launched src)
  in
  Alcotest.(check int) "all source IPs distinct" (List.length ips)
    (List.length (List.sort_uniq compare ips))

let test_source_keys_unique_across_sources () =
  (* regression: two sources on one host must not collide on 5-tuples *)
  let e, a, b = rig () in
  let s1 = Source.create e ~rng:(Rng.create 6) ~host:a ~dst:b ~rate:50.0 () in
  let s2 = Source.create e ~rng:(Rng.create 7) ~host:a ~dst:b ~rate:50.0 () in
  Source.start s1;
  Source.start s2;
  Scotch_sim.Engine.run ~until:2.0 e;
  let keys =
    List.map (fun (l : Flow_gen.launched) -> l.Flow_gen.key)
      (Source.launched s1 @ Source.launched s2)
  in
  Alcotest.(check int) "all keys distinct" (List.length keys)
    (List.length (List.sort_uniq compare keys))

let test_source_dst_snapshot () =
  (* regression: retargeting a source must not redirect in-flight flows *)
  let e, a, b = rig () in
  let c = Host.create e ~id:3 ~name:"c" in
  let src = Source.create e ~rng:(Rng.create 8) ~host:a ~dst:b ~rate:1.0 () in
  let l = Source.launch_flow src ~spec:{ Flow_gen.packets = 20; payload = 10; interval = 0.05 } in
  ignore (Scotch_sim.Engine.schedule_at e ~at:0.3 (fun () -> Source.set_destination src ~dst:c));
  Scotch_sim.Engine.run e;
  match Host.flow_record b l.Flow_gen.flow_id with
  | Some r -> Alcotest.(check int) "all 20 at original dst" 20 r.Host.packets
  | None -> Alcotest.fail "flow lost"

let test_failure_fraction () =
  let e, a, b = rig () in
  let src = Source.create e ~rng:(Rng.create 9) ~host:a ~dst:b ~rate:100.0 () in
  Source.start src;
  Scotch_sim.Engine.run ~until:1.0 e;
  Alcotest.(check (float 1e-9)) "lossless path" 0.0
    (Source.failure_fraction src ~dst:b ());
  (* against the WRONG destination everything "fails" *)
  let c = Host.create e ~id:4 ~name:"c" in
  Alcotest.(check (float 1e-9)) "wrong dst" 1.0 (Source.failure_fraction src ~dst:c ())

let test_completion_fraction () =
  let e, a, b = rig () in
  let src = Source.create e ~rng:(Rng.create 10) ~host:a ~dst:b ~rate:1.0 () in
  ignore (Source.launch_flow src ~spec:{ Flow_gen.packets = 5; payload = 10; interval = 0.01 });
  Scotch_sim.Engine.run e;
  Alcotest.(check (float 1e-9)) "complete" 1.0 (Source.completion_fraction src ~dst:b ())

(* ------------------------------------------------------------------ *)
(* Sizes *)

let test_sizes_probe () =
  let spec = Sizes.probe (Rng.create 1) in
  Alcotest.(check int) "one packet" 1 spec.Flow_gen.packets;
  Alcotest.(check int) "no payload" 0 spec.Flow_gen.payload

let test_sizes_pareto () =
  let sample = Sizes.pareto ~alpha:1.2 ~min_packets:2 ~max_packets:100 ~pkt_rate:100.0 () in
  let rng = Rng.create 11 in
  for _ = 1 to 1000 do
    let s = sample rng in
    Alcotest.(check bool) "within bounds" true
      (s.Flow_gen.packets >= 2 && s.Flow_gen.packets <= 100)
  done

let test_sizes_mice_elephants () =
  let sample = Sizes.mice_and_elephants ~elephant_fraction:0.1 () in
  let rng = Rng.create 12 in
  let elephants = ref 0 in
  let n = 5000 in
  for _ = 1 to n do
    let s = sample rng in
    if s.Flow_gen.packets > 1000 then incr elephants
  done;
  let frac = float_of_int !elephants /. float_of_int n in
  Alcotest.(check bool) "elephant fraction ~0.1" true (abs_float (frac -. 0.1) < 0.02)

(* ------------------------------------------------------------------ *)
(* Tracegen *)

let params =
  { Tracegen.duration = 50.0; base_rate = 20.0; flash_start = 20.0; flash_end = 30.0;
    flash_multiplier = 10.0; hotspot_fraction = 0.8; num_sources = 3; num_destinations = 2;
    size_of = Sizes.probe }

let test_trace_sorted_and_bounded () =
  let trace = Tracegen.generate (Rng.create 13) params in
  let sorted = ref true and bounded = ref true in
  let prev = ref 0.0 in
  List.iter
    (fun (e : Tracegen.flow_event) ->
      if e.Tracegen.at < !prev then sorted := false;
      prev := e.Tracegen.at;
      if e.Tracegen.at < 0.0 || e.Tracegen.at >= params.Tracegen.duration then bounded := false;
      if e.Tracegen.src < 0 || e.Tracegen.src >= params.Tracegen.num_sources then bounded := false;
      if e.Tracegen.dst < 0 || e.Tracegen.dst >= params.Tracegen.num_destinations then
        bounded := false)
    trace;
  Alcotest.(check bool) "sorted" true !sorted;
  Alcotest.(check bool) "bounded" true !bounded

let test_trace_flash_ratio () =
  let trace = Tracegen.generate (Rng.create 14) params in
  let base = ref 0 and flash = ref 0 in
  List.iter
    (fun (e : Tracegen.flow_event) ->
      if e.Tracegen.at >= params.Tracegen.flash_start && e.Tracegen.at < params.Tracegen.flash_end
      then incr flash
      else incr base)
    trace;
  (* flash window: 10 s at 200/s = 2000; base: 40 s at 20/s = 800 *)
  let ratio = float_of_int !flash /. float_of_int (max 1 !base) in
  Alcotest.(check bool) "flash dominates" true (ratio > 1.5 && ratio < 4.0)

let test_trace_hotspot () =
  let trace = Tracegen.generate (Rng.create 15) params in
  let hot = List.length (List.filter (fun e -> e.Tracegen.dst = 0) trace) in
  let frac = float_of_int hot /. float_of_int (List.length trace) in
  Alcotest.(check bool) "hotspot fraction ~0.8" true (abs_float (frac -. 0.8) < 0.05)

let test_trace_total_packets () =
  let trace = Tracegen.generate (Rng.create 16) params in
  (* probe flows: one packet each *)
  Alcotest.(check int) "packets = flows for probes" (List.length trace)
    (Tracegen.total_packets trace)

let test_trace_replay () =
  let e = Scotch_sim.Engine.create () in
  let hosts = Array.init 3 (fun i -> Host.create e ~id:(i + 1) ~name:(Printf.sprintf "h%d" i)) in
  let dests = Array.init 2 (fun i -> Host.create e ~id:(10 + i) ~name:(Printf.sprintf "d%d" i)) in
  (* every source delivers straight to whichever destination the packet names *)
  Array.iter
    (fun h ->
      let link = Scotch_sim.Link.create e ~name:"l" ~bandwidth_bps:1e12 ~latency:1e-6 ~queue_capacity:100000 in
      Scotch_sim.Link.connect link (fun pkt ->
          Array.iter
            (fun d ->
              if Scotch_packet.Ipv4_addr.equal (Host.ip d) pkt.Scotch_packet.Packet.ip.Scotch_packet.Headers.Ipv4.dst
              then Host.deliver d pkt)
            dests);
      Host.set_uplink h link)
    hosts;
  let sources =
    Array.map (fun h -> Source.create e ~rng:(Rng.create (Host.id h)) ~host:h ~dst:dests.(0) ~rate:1.0 ()) hosts
  in
  let small = { params with Tracegen.duration = 10.0; base_rate = 10.0; flash_start = 99.0; flash_end = 99.0 } in
  let trace = Tracegen.generate (Rng.create 17) small in
  let launched = Tracegen.replay e trace ~sources ~destinations:dests in
  Scotch_sim.Engine.run e;
  Alcotest.(check int) "every event launched" (List.length trace)
    (Array.fold_left (fun acc l -> acc + if l <> None then 1 else 0) 0 launched);
  let delivered = Array.fold_left (fun acc d -> acc + Host.flows_seen d) 0 dests in
  Alcotest.(check int) "every flow delivered" (List.length trace) delivered

let () =
  Alcotest.run "scotch_workload"
    [ ( "source",
        [ Alcotest.test_case "fresh flow ids" `Quick test_fresh_flow_ids;
          Alcotest.test_case "constant rate" `Quick test_source_constant_rate;
          Alcotest.test_case "poisson rate" `Quick test_source_poisson_rate;
          Alcotest.test_case "stop" `Quick test_source_stop;
          Alcotest.test_case "flow completes after stop" `Quick test_source_flow_completes_after_stop;
          Alcotest.test_case "spoofed sources unique" `Quick test_source_spoofing_unique_sources;
          Alcotest.test_case "keys unique across sources (regression)" `Quick
            test_source_keys_unique_across_sources;
          Alcotest.test_case "dst snapshot (regression)" `Quick test_source_dst_snapshot;
          Alcotest.test_case "failure fraction" `Quick test_failure_fraction;
          Alcotest.test_case "completion fraction" `Quick test_completion_fraction ] );
      ( "sizes",
        [ Alcotest.test_case "probe" `Quick test_sizes_probe;
          Alcotest.test_case "pareto bounds" `Quick test_sizes_pareto;
          Alcotest.test_case "mice/elephants mix" `Quick test_sizes_mice_elephants ] );
      ( "tracegen",
        [ Alcotest.test_case "sorted and bounded" `Quick test_trace_sorted_and_bounded;
          Alcotest.test_case "flash ratio" `Quick test_trace_flash_ratio;
          Alcotest.test_case "hotspot fraction" `Quick test_trace_hotspot;
          Alcotest.test_case "total packets" `Quick test_trace_total_packets;
          Alcotest.test_case "replay" `Quick test_trace_replay ] ) ]
