(* Tests for Scotch_topo: hosts, middleboxes, the topology graph,
   wiring helpers, tunnels and path computation. *)

open Scotch_topo
open Scotch_switch
open Scotch_packet

let fast_profile =
  { Profile.open_vswitch with Profile.forward_latency = 0.0; datapath_pps = 1e9 }

let mk_packet ?(flow_id = 1) ?(seq = 0) ~src ~dst () =
  Packet.udp_data ~seq_in_flow:seq ~payload_len:100 ~flow_id ~created:0.0
    ~src_mac:(Host.mac src) ~dst_mac:(Host.mac dst) ~ip_src:(Host.ip src)
    ~ip_dst:(Host.ip dst) ~src_port:1000 ~dst_port:80 ()

(* ------------------------------------------------------------------ *)
(* Host *)

let test_host_identity () =
  let e = Scotch_sim.Engine.create () in
  let h = Host.create e ~id:7 ~name:"h7" in
  Alcotest.(check int) "id" 7 (Host.id h);
  Alcotest.(check string) "name" "h7" (Host.name h);
  Alcotest.(check string) "stable ip" "10.0.0.7" (Ipv4_addr.to_string (Host.ip h))

let test_host_deliver_strips_and_records () =
  let e = Scotch_sim.Engine.create () in
  let a = Host.create e ~id:1 ~name:"a" in
  let b = Host.create e ~id:2 ~name:"b" in
  let seen = ref None in
  Host.on_receive b (fun pkt -> seen := Some pkt);
  let pkt = mk_packet ~src:a ~dst:b () in
  let pkt = Packet.push_encap (Headers.Encap.mpls 3) pkt in
  let pkt = Packet.push_encap (Headers.Encap.mpls 9) pkt in
  Host.deliver b pkt;
  (match !seen with
  | Some p -> Alcotest.(check bool) "stripped" false (Packet.is_encapsulated p)
  | None -> Alcotest.fail "not delivered");
  Alcotest.(check int) "packet count" 1 (Host.received_packets b);
  Alcotest.(check int) "flows seen" 1 (Host.flows_seen b);
  match Host.flow_record b 1 with
  | Some r -> Alcotest.(check int) "flow packets" 1 r.Host.packets
  | None -> Alcotest.fail "no flow record"

let test_host_send_requires_uplink () =
  let e = Scotch_sim.Engine.create () in
  let a = Host.create e ~id:1 ~name:"a" in
  Alcotest.(check bool) "raises without uplink" true
    (try
       Host.send a (mk_packet ~src:a ~dst:a ());
       false
     with Invalid_argument _ -> true)

let test_host_delay_tracking () =
  let e = Scotch_sim.Engine.create () in
  let a = Host.create e ~id:1 ~name:"a" in
  let b = Host.create e ~id:2 ~name:"b" in
  ignore (Scotch_sim.Engine.schedule e ~delay:0.5 (fun () -> Host.deliver b (mk_packet ~src:a ~dst:b ())));
  Scotch_sim.Engine.run e;
  Alcotest.(check (float 1e-9)) "delay sample" 0.5
    (Scotch_util.Stats.Samples.mean (Host.delay_samples b))

(* ------------------------------------------------------------------ *)
(* Middlebox *)

let test_middlebox_stateful () =
  let e = Scotch_sim.Engine.create () in
  let a = Host.create e ~id:1 ~name:"a" in
  let b = Host.create e ~id:2 ~name:"b" in
  let mb = Middlebox.create e ~name:"fw" () in
  let forwarded = ref 0 in
  let link = Scotch_sim.Link.create e ~name:"out" ~bandwidth_bps:1e12 ~latency:0.0 ~queue_capacity:10 in
  Scotch_sim.Link.connect link (fun _ -> incr forwarded);
  Middlebox.connect_out mb link;
  (* seq 0 establishes, seq 1 passes *)
  Middlebox.receive mb (mk_packet ~src:a ~dst:b ~seq:0 ());
  Middlebox.receive mb (mk_packet ~src:a ~dst:b ~seq:1 ());
  (* a different flow starting mid-stream is rejected *)
  Middlebox.receive mb (mk_packet ~flow_id:2 ~src:b ~dst:a ~seq:3 ());
  Scotch_sim.Engine.run e;
  Alcotest.(check int) "forwarded" 2 !forwarded;
  Alcotest.(check int) "processed" 2 (Middlebox.processed mb);
  Alcotest.(check int) "state violations" 1 (Middlebox.state_violations mb);
  Alcotest.(check int) "flows tracked" 1 (Middlebox.flows_tracked mb)

let test_middlebox_rejects_encapsulated () =
  let e = Scotch_sim.Engine.create () in
  let a = Host.create e ~id:1 ~name:"a" in
  let b = Host.create e ~id:2 ~name:"b" in
  let mb = Middlebox.create e ~name:"fw" () in
  Middlebox.receive mb (Packet.push_encap (Headers.Encap.mpls 1) (mk_packet ~src:a ~dst:b ()));
  Alcotest.(check int) "encap violation" 1 (Middlebox.encap_violations mb);
  Alcotest.(check int) "not processed" 0 (Middlebox.processed mb)

let test_middlebox_policy_block () =
  let e = Scotch_sim.Engine.create () in
  let a = Host.create e ~id:1 ~name:"a" in
  let b = Host.create e ~id:2 ~name:"b" in
  let mb = Middlebox.create e ~name:"fw" () in
  Middlebox.set_policy mb (fun key -> key.Flow_key.l4_dst = 80);
  Middlebox.receive mb (mk_packet ~src:a ~dst:b ());
  Alcotest.(check int) "blocked" 0 (Middlebox.processed mb)

(* ------------------------------------------------------------------ *)
(* Topology graph *)

(* line: s1 - s2 - s3, host a on s1, host b on s3 *)
let line_topology () =
  let e = Scotch_sim.Engine.create () in
  let topo = Topology.create e in
  let s =
    Array.init 3 (fun i ->
        let sw = Switch.create e ~dpid:(i + 1) ~name:(Printf.sprintf "s%d" (i + 1))
            ~profile:fast_profile () in
        Topology.add_switch topo sw;
        sw)
  in
  Topology.link_switches topo (s.(0), 10) (s.(1), 11);
  Topology.link_switches topo (s.(1), 12) (s.(2), 13);
  let a = Host.create e ~id:1 ~name:"a" in
  let b = Host.create e ~id:2 ~name:"b" in
  Topology.add_host topo a;
  Topology.add_host topo b;
  Topology.attach_host topo a s.(0) ~port:1;
  Topology.attach_host topo b s.(2) ~port:1;
  (e, topo, s, a, b)

let test_shortest_path_line () =
  let _, topo, _, _, _ = line_topology () in
  (match Topology.shortest_path topo ~src:1 ~dst:3 with
  | Some [ (1, 10); (2, 12) ] -> ()
  | Some p ->
    Alcotest.fail
      (Printf.sprintf "unexpected path: %s"
         (String.concat ";" (List.map (fun (d, p) -> Printf.sprintf "(%d,%d)" d p) p)))
  | None -> Alcotest.fail "no path");
  Alcotest.(check (option (list (pair int int)))) "self path" (Some [])
    (Topology.shortest_path topo ~src:2 ~dst:2);
  Alcotest.(check (option (list (pair int int)))) "unknown dst" None
    (Topology.shortest_path topo ~src:1 ~dst:99)

let test_route_to_host () =
  let _, topo, _, _, b = line_topology () in
  match Topology.route_to_host topo ~src:1 ~dst_ip:(Host.ip b) with
  | Some [ (1, 10); (2, 12); (3, 1) ] -> ()
  | Some _ -> Alcotest.fail "unexpected route"
  | None -> Alcotest.fail "no route"

let test_host_attachment () =
  let _, topo, _, a, _ = line_topology () in
  Alcotest.(check (option (pair int int))) "attachment" (Some (1, 1))
    (Topology.host_attachment topo (Host.ip a));
  Alcotest.(check (option (pair int int))) "unknown" None
    (Topology.host_attachment topo (Ipv4_addr.make 1 2 3 4))

let test_end_to_end_forwarding () =
  (* manual rules along the line; packet a -> b crosses three switches *)
  let e, _, s, a, b = line_topology () in
  let pkt = mk_packet ~src:a ~dst:b () in
  let key = Packet.flow_key pkt in
  let install sw port =
    match
      Switch.install_direct sw ~table_id:0 ~priority:10 ~match_:(Scotch_openflow.Of_match.exact_flow key)
        ~instructions:(Scotch_openflow.Of_action.output (Scotch_openflow.Of_types.Port_no.Physical port))
        ()
    with
    | Ok () -> ()
    | Error _ -> Alcotest.fail "install"
  in
  install s.(0) 10;
  install s.(1) 12;
  install s.(2) 1;
  Host.send a pkt;
  Scotch_sim.Engine.run e;
  Alcotest.(check int) "delivered end to end" 1 (Host.received_packets b)

let test_tunnel_to_host () =
  let e, topo, s, _, b = line_topology () in
  let tid = Topology.add_tunnel_to_host topo s.(0) b in
  (match Topology.tunnel topo tid with
  | Some t ->
    Alcotest.(check int) "src dpid" 1 t.Topology.src_dpid;
    Alcotest.(check bool) "dst host" true (t.Topology.dst = `Host 2)
  | None -> Alcotest.fail "tunnel not registered");
  (* send straight into the tunnel *)
  (match
     Switch.install_direct s.(0) ~table_id:0 ~priority:0 ~match_:Scotch_openflow.Of_match.wildcard
       ~instructions:
         (Scotch_openflow.Of_action.output
            (Scotch_openflow.Of_types.Port_no.Physical (Topology.tunnel_port_of_id tid)))
       ()
   with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "install");
  Switch.receive s.(0) ~in_port:1 (mk_packet ~src:b ~dst:b ());
  Scotch_sim.Engine.run e;
  Alcotest.(check int) "tunnel delivery" 1 (Host.received_packets b)

let test_tunnel_between_switches_duplex () =
  let e, topo, s, _, _ = line_topology () in
  let tid_ab, tid_ba = Topology.add_tunnel_switches topo s.(0) s.(2) in
  Alcotest.(check bool) "distinct ids" true (tid_ab <> tid_ba);
  (match Topology.tunnel topo tid_ab with
  | Some t -> Alcotest.(check bool) "a->c" true (t.Topology.src_dpid = 1 && t.Topology.dst = `Switch 3)
  | None -> Alcotest.fail "missing tunnel");
  ignore e

let test_duplicate_registration_rejected () =
  let e = Scotch_sim.Engine.create () in
  let topo = Topology.create e in
  let sw = Switch.create e ~dpid:1 ~name:"s" ~profile:fast_profile () in
  Topology.add_switch topo sw;
  Alcotest.(check bool) "duplicate dpid" true
    (try
       Topology.add_switch topo sw;
       false
     with Invalid_argument _ -> true)

let test_neighbors () =
  let _, topo, _, _, _ = line_topology () in
  Alcotest.(check int) "s2 has two neighbors" 2 (List.length (Topology.neighbors topo 2));
  Alcotest.(check int) "s1 has one" 1 (List.length (Topology.neighbors topo 1))

let () =
  Alcotest.run "scotch_topo"
    [ ( "host",
        [ Alcotest.test_case "identity" `Quick test_host_identity;
          Alcotest.test_case "deliver strips+records" `Quick test_host_deliver_strips_and_records;
          Alcotest.test_case "send requires uplink" `Quick test_host_send_requires_uplink;
          Alcotest.test_case "delay tracking" `Quick test_host_delay_tracking ] );
      ( "middlebox",
        [ Alcotest.test_case "stateful" `Quick test_middlebox_stateful;
          Alcotest.test_case "rejects encapsulated" `Quick test_middlebox_rejects_encapsulated;
          Alcotest.test_case "policy block" `Quick test_middlebox_policy_block ] );
      ( "topology",
        [ Alcotest.test_case "shortest path on line" `Quick test_shortest_path_line;
          Alcotest.test_case "route to host" `Quick test_route_to_host;
          Alcotest.test_case "host attachment" `Quick test_host_attachment;
          Alcotest.test_case "end-to-end forwarding" `Quick test_end_to_end_forwarding;
          Alcotest.test_case "tunnel to host" `Quick test_tunnel_to_host;
          Alcotest.test_case "switch tunnel duplex" `Quick test_tunnel_between_switches_duplex;
          Alcotest.test_case "duplicate registration" `Quick test_duplicate_registration_rejected;
          Alcotest.test_case "neighbors" `Quick test_neighbors ] ) ]
