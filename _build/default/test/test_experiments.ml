(* Tests for Scotch_experiments: the report type, the reusable testbeds
   and small-scale smoke runs of the figure drivers (full-scale shape
   assertions live in test_integration.ml). *)

open Scotch_experiments
open Scotch_workload

(* ------------------------------------------------------------------ *)
(* Report *)

let fig =
  { Report.id = "t";
    title = "test";
    x_label = "x";
    y_label = "y";
    series =
      [ { Report.label = "a"; points = [ (1.0, 10.0); (2.0, 20.0) ] };
        { Report.label = "b"; points = [ (1.0, 5.0); (3.0, 15.0) ] } ] }

let test_report_lookups () =
  let a = Report.series_exn fig "a" in
  Alcotest.(check (float 1e-9)) "value_at" 20.0 (Report.value_at a 2.0);
  Alcotest.(check (float 1e-9)) "last_y" 20.0 (Report.last_y a);
  Alcotest.(check (float 1e-9)) "max_y" 20.0 (Report.max_y a);
  Alcotest.(check (float 1e-9)) "min_y" 10.0 (Report.min_y a);
  Alcotest.(check bool) "missing series raises" true
    (try
       ignore (Report.series_exn fig "zzz");
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "missing x raises" true
    (try
       ignore (Report.value_at a 99.0);
       false
     with Invalid_argument _ -> true)

let test_report_table () =
  let tbl = Report.to_table fig in
  let s = Scotch_util.Table_printer.render tbl in
  (* union of x values: 1, 2, 3 -> header + separator + 3 rows *)
  Alcotest.(check int) "rows" 5 (List.length (String.split_on_char '\n' (String.trim s)))

(* ------------------------------------------------------------------ *)
(* Testbeds *)

let test_single_testbed_wiring () =
  let tb =
    Testbed.single ~profile:Scotch_switch.Profile.open_vswitch ~client_rate:50.0
      ~attack_rate:1.0 ()
  in
  Source.start tb.Testbed.client_src;
  Scotch_sim.Engine.run ~until:2.0 tb.Testbed.engine;
  (* reactive routing delivers on an uncongested OVS *)
  Alcotest.(check bool) "flows delivered" true (Scotch_topo.Host.flows_seen tb.Testbed.server > 80);
  Alcotest.(check (float 0.05)) "no failure" 0.0
    (Source.failure_fraction tb.Testbed.client_src ~dst:tb.Testbed.server ~until:1.5 ())

let test_scotch_net_wiring () =
  let net = Testbed.scotch_net ~num_vswitches:3 ~num_backups:1 ~num_clients:2 ~num_servers:2 () in
  (* all entities registered *)
  Alcotest.(check int) "vswitch array" 4 (Array.length net.Testbed.vswitches);
  Alcotest.(check int) "clients" 2 (Array.length net.Testbed.clients);
  Alcotest.(check int) "servers" 2 (Array.length net.Testbed.servers);
  Alcotest.(check int) "overlay size" 4 (Scotch_core.Overlay.size net.Testbed.overlay);
  Alcotest.(check int) "active pool" 3
    (List.length (Scotch_core.Overlay.active_vswitches net.Testbed.overlay));
  (* each physical switch has uplinks to every vswitch *)
  Alcotest.(check int) "edge uplinks" 4
    (List.length (Scotch_core.Overlay.uplinks_of net.Testbed.overlay Testbed.edge_dpid));
  (* every host is covered *)
  Scotch_topo.Topology.iter_hosts net.Testbed.topo (fun h ->
      Alcotest.(check bool)
        (Printf.sprintf "%s covered" (Scotch_topo.Host.name h))
        true
        (Scotch_core.Overlay.cover_of_ip net.Testbed.overlay (Scotch_topo.Host.ip h) <> None));
  (* physical route exists from edge to every server *)
  Array.iter
    (fun srv ->
      Alcotest.(check bool) "route" true
        (Scotch_topo.Topology.route_to_host net.Testbed.topo ~src:Testbed.edge_dpid
           ~dst_ip:(Scotch_topo.Host.ip srv)
        <> None))
    net.Testbed.servers

let test_scotch_net_quiet_is_clean () =
  (* no traffic: monitors and heartbeats run without side effects *)
  let net = Testbed.scotch_net () in
  Testbed.run_until net ~until:5.0;
  let c = Scotch_core.Scotch.counters net.Testbed.app in
  Alcotest.(check int) "no activations" 0 c.Scotch_core.Scotch.activations;
  Alcotest.(check int) "no flows" 0 c.Scotch_core.Scotch.flows_seen;
  (* every vswitch still alive (heartbeats answered) *)
  Alcotest.(check int) "all alive" 4 (Scotch_core.Overlay.alive_count net.Testbed.overlay)

let test_fabric_wiring () =
  let fb = Testbed.fabric ~num_racks:3 ~hosts_per_rack:2 ~num_spines:2 ~vswitches_per_rack:2 () in
  Alcotest.(check int) "tors" 3 (Array.length fb.Testbed.f_tors);
  Alcotest.(check int) "spines" 2 (Array.length fb.Testbed.f_spines);
  Alcotest.(check int) "vswitches" 6 (Array.length fb.Testbed.f_vswitches);
  (* any-to-any physical reachability across racks *)
  Array.iter
    (fun rack ->
      Array.iter
        (fun h ->
          Alcotest.(check bool) "reachable from tor0" true
            (Scotch_topo.Topology.route_to_host fb.Testbed.f_topo ~src:(Testbed.tor_dpid 0)
               ~dst_ip:(Scotch_topo.Host.ip h)
            <> None))
        rack)
    fb.Testbed.f_hosts;
  (* rack-local coverage: host (2,1) is covered by a rack-2 vswitch *)
  match
    Scotch_core.Overlay.cover_of_ip fb.Testbed.f_overlay
      (Scotch_topo.Host.ip fb.Testbed.f_hosts.(2).(1))
  with
  | Some vd -> Alcotest.(check bool) "rack-local cover" true (vd = 104 || vd = 105)
  | None -> Alcotest.fail "host not covered"

let test_fabric_cross_rack_delivery () =
  let fb = Testbed.fabric ~num_racks:2 ~hosts_per_rack:2 () in
  let src = fb.Testbed.f_hosts.(0).(0) and dst = fb.Testbed.f_hosts.(1).(1) in
  let client = Testbed.fabric_client fb ~src ~dst ~rate:20.0 in
  Scotch_workload.Source.start client;
  Scotch_sim.Engine.run ~until:5.0 fb.Testbed.f_engine;
  Alcotest.(check bool) "cross-rack flows delivered" true
    (Scotch_workload.Source.failure_fraction client ~dst ~until:4.0 () < 0.1)

(* ------------------------------------------------------------------ *)
(* Figure drivers (smoke: tiny scales, structural checks) *)

let test_fig3_point () =
  let f =
    Fig3.run_point ~profile:Scotch_switch.Profile.open_vswitch ~attack_rate:200.0
      ~duration:5.0 ()
  in
  Alcotest.(check bool) "fraction in [0,1]" true (f >= 0.0 && f <= 1.0);
  Alcotest.(check bool) "ovs absorbs small attack" true (f < 0.1)

let test_fig4_point () =
  let p =
    Fig4.run_point ~profile:Scotch_switch.Profile.pica8 ~rate:2000.0 ~duration:6.0 ()
  in
  (* saturated: the three rates coincide at the OFA ceiling *)
  Alcotest.(check bool) "pin ~ insertion" true
    (abs_float (p.Fig4.packet_in_rate -. p.Fig4.insertion_rate) < 10.0);
  Alcotest.(check bool) "insertion ~ success" true
    (abs_float (p.Fig4.insertion_rate -. p.Fig4.successful_rate) < 10.0);
  Alcotest.(check bool) "saturates near 140" true
    (p.Fig4.successful_rate > 110.0 && p.Fig4.successful_rate < 160.0)

let test_fig9_points () =
  let low = Fig9.run_point ~profile:Scotch_switch.Profile.pica8 ~rate:100.0 ~duration:25.0 () in
  Alcotest.(check bool) "loss-free at 100/s" true (abs_float (low -. 100.0) < 3.0);
  let high = Fig9.run_point ~profile:Scotch_switch.Profile.pica8 ~rate:2000.0 ~duration:25.0 () in
  Alcotest.(check bool) "saturates near 950" true (high > 850.0 && high < 1050.0)

let test_fig10_knee () =
  let below =
    Fig10.run_point ~profile:Scotch_switch.Profile.pica8 ~insertion_rate:400.0
      ~data_rate:1000.0 ~duration:5.0 ()
  in
  let above =
    Fig10.run_point ~profile:Scotch_switch.Profile.pica8 ~insertion_rate:1500.0
      ~data_rate:1000.0 ~duration:5.0 ()
  in
  Alcotest.(check bool) "low loss below the knee" true (below < 0.1);
  Alcotest.(check bool) ">90% past the knee" true (above > 0.9)

let test_fig11_point () =
  let p = Fig11.run_point ~differentiate:true ~attack_rate:1000.0 ~duration:8.0 () in
  Alcotest.(check bool) "client keeps physical share" true (p.Fig11.physical_share > 0.5);
  Alcotest.(check bool) "client rarely fails" true (p.Fig11.failure < 0.15)

let test_fig12_variant () =
  let points, migrations = Fig12.run_variant ~migration:true ~duration:12.0 () in
  Alcotest.(check bool) "all elephants migrated" true (migrations >= Fig12.elephant_count);
  (* last bin at physical-path delay, first bin on the overlay *)
  (match (points, List.rev points) with
  | (t0, d0) :: _, (tn, dn) :: _ ->
    Alcotest.(check bool) "starts high" true (d0 > 0.3);
    Alcotest.(check bool) "ends low" true (dn < 0.25);
    Alcotest.(check bool) "time advances" true (tn > t0)
  | _ -> Alcotest.fail "no points")

let test_ablation_withdrawal_figure () =
  let fig = Ablation.run_withdrawal ~scale:0.7 () in
  let active = Report.series_exn fig "overlay active" in
  Alcotest.(check (float 1e-9)) "active early" 1.0 (Report.value_at active 3.0);
  Alcotest.(check (float 1e-9)) "inactive at the end" 0.0 (Report.last_y active)

let () =
  Alcotest.run "scotch_experiments"
    [ ( "report",
        [ Alcotest.test_case "lookups" `Quick test_report_lookups;
          Alcotest.test_case "table layout" `Quick test_report_table ] );
      ( "testbeds",
        [ Alcotest.test_case "single wiring" `Quick test_single_testbed_wiring;
          Alcotest.test_case "scotch_net wiring" `Quick test_scotch_net_wiring;
          Alcotest.test_case "quiet network is clean" `Quick test_scotch_net_quiet_is_clean;
          Alcotest.test_case "fabric wiring" `Quick test_fabric_wiring;
          Alcotest.test_case "fabric cross-rack delivery" `Quick test_fabric_cross_rack_delivery ] );
      ( "figures",
        [ Alcotest.test_case "fig3 point" `Slow test_fig3_point;
          Alcotest.test_case "fig4 point" `Slow test_fig4_point;
          Alcotest.test_case "fig9 points" `Slow test_fig9_points;
          Alcotest.test_case "fig10 knee" `Slow test_fig10_knee;
          Alcotest.test_case "fig11 point" `Slow test_fig11_point;
          Alcotest.test_case "fig12 variant" `Slow test_fig12_variant;
          Alcotest.test_case "withdrawal figure" `Slow test_ablation_withdrawal_figure ] ) ]
