(* Tests for Scotch_packet: addresses, headers, flow keys, the composite
   packet and the wire codec (round-trip property tests). *)

open Scotch_packet
open Headers

(* ------------------------------------------------------------------ *)
(* Mac *)

let test_mac_roundtrip () =
  let m = Mac.of_string "02:00:0a:0b:0c:0d" in
  Alcotest.(check string) "to_string" "02:00:0a:0b:0c:0d" (Mac.to_string m);
  Alcotest.(check bool) "equal" true (Mac.equal m (Mac.of_int (Mac.to_int m)))

let test_mac_broadcast () =
  Alcotest.(check string) "broadcast" "ff:ff:ff:ff:ff:ff" (Mac.to_string Mac.broadcast)

let test_mac_of_host_id () =
  let a = Mac.of_host_id 1 and b = Mac.of_host_id 2 in
  Alcotest.(check bool) "distinct" false (Mac.equal a b);
  (* locally administered unicast: bit 1 of first octet set, bit 0 clear *)
  let first_octet = Mac.to_int a lsr 40 in
  Alcotest.(check int) "locally administered" 0x02 (first_octet land 0x03)

let test_mac_bad_string () =
  Alcotest.(check bool) "bad parse raises" true
    (try
       ignore (Mac.of_string "nonsense");
       false
     with _ -> true)

(* ------------------------------------------------------------------ *)
(* Ipv4_addr *)

let test_ip_roundtrip () =
  let a = Ipv4_addr.of_string "10.1.2.3" in
  Alcotest.(check string) "to_string" "10.1.2.3" (Ipv4_addr.to_string a);
  Alcotest.(check int) "make" (Ipv4_addr.to_int a)
    (Ipv4_addr.to_int (Ipv4_addr.make 10 1 2 3))

let test_ip_prefix_mask () =
  Alcotest.(check int) "/0" 0 (Ipv4_addr.prefix_mask 0);
  Alcotest.(check int) "/32" 0xFFFFFFFF (Ipv4_addr.prefix_mask 32);
  Alcotest.(check int) "/8" 0xFF000000 (Ipv4_addr.prefix_mask 8);
  Alcotest.(check int) "/24" 0xFFFFFF00 (Ipv4_addr.prefix_mask 24)

let test_ip_matches () =
  let net = Ipv4_addr.to_int (Ipv4_addr.make 10 0 0 0) in
  let mask = Ipv4_addr.prefix_mask 8 in
  Alcotest.(check bool) "in prefix" true
    (Ipv4_addr.matches ~addr:(Ipv4_addr.make 10 9 8 7) ~value:net ~mask);
  Alcotest.(check bool) "out of prefix" false
    (Ipv4_addr.matches ~addr:(Ipv4_addr.make 11 0 0 1) ~value:net ~mask)

let test_ip_octet_range () =
  Alcotest.(check bool) "octet 256 rejected" true
    (try
       ignore (Ipv4_addr.make 256 0 0 0);
       false
     with Invalid_argument _ -> true)

(* ------------------------------------------------------------------ *)
(* Flow keys *)

let key1 =
  Flow_key.make ~ip_src:(Ipv4_addr.make 10 0 0 1) ~ip_dst:(Ipv4_addr.make 10 0 0 2)
    ~proto:6 ~l4_src:1234 ~l4_dst:80 ()

let test_flow_key_equal () =
  let key1' =
    Flow_key.make ~ip_src:(Ipv4_addr.make 10 0 0 1) ~ip_dst:(Ipv4_addr.make 10 0 0 2)
      ~proto:6 ~l4_src:1234 ~l4_dst:80 ()
  in
  Alcotest.(check bool) "equal" true (Flow_key.equal key1 key1');
  Alcotest.(check bool) "hash equal" true (Flow_key.hash key1 = Flow_key.hash key1');
  let key2 = { key1 with Flow_key.l4_src = 1235 } in
  Alcotest.(check bool) "different" false (Flow_key.equal key1 key2)

let test_flow_key_hash_nonnegative () =
  let rng = Scotch_util.Rng.create 13 in
  for _ = 1 to 1000 do
    let k =
      Flow_key.make
        ~ip_src:(Ipv4_addr.of_int (Scotch_util.Rng.bits rng))
        ~ip_dst:(Ipv4_addr.of_int (Scotch_util.Rng.bits rng))
        ~proto:(Scotch_util.Rng.int rng 256)
        ~l4_src:(Scotch_util.Rng.int rng 65536)
        ~l4_dst:(Scotch_util.Rng.int rng 65536)
        ()
    in
    Alcotest.(check bool) "hash >= 0" true (Flow_key.hash k >= 0)
  done

let test_flow_key_hash_spread () =
  (* hash mod n should spread sequential flows roughly evenly: this is
     what the select-group load balancer relies on *)
  let n = 4 in
  let counts = Array.make n 0 in
  for i = 0 to 9999 do
    let k =
      Flow_key.make
        ~ip_src:(Ipv4_addr.of_int (0x0A000000 + i))
        ~ip_dst:(Ipv4_addr.make 10 0 0 200) ~proto:6 ~l4_src:1024 ~l4_dst:80 ()
    in
    let b = Flow_key.hash k mod n in
    counts.(b) <- counts.(b) + 1
  done;
  Array.iter
    (fun c ->
      Alcotest.(check bool) "bucket within 20% of fair share" true
        (abs (c - 2500) < 500))
    counts

let test_flow_key_to_string () =
  Alcotest.(check string) "format" "10.0.0.1:1234->10.0.0.2:80/6" (Flow_key.to_string key1)

(* ------------------------------------------------------------------ *)
(* Packet construction and encapsulation *)

let mk_packet () =
  Packet.tcp_syn ~flow_id:1 ~created:0.0 ~src_mac:(Mac.of_host_id 1)
    ~dst_mac:(Mac.of_host_id 2) ~ip_src:(Ipv4_addr.make 10 0 0 1)
    ~ip_dst:(Ipv4_addr.make 10 0 0 2) ~src_port:1234 ~dst_port:80 ()

let test_packet_size () =
  let p = mk_packet () in
  (* eth 14 + ip 20 + tcp 20 *)
  Alcotest.(check int) "bare size" 54 (Packet.size p);
  let p = Packet.push_encap (Encap.mpls 5) p in
  Alcotest.(check int) "mpls adds 4" 58 (Packet.size p);
  let p = Packet.push_encap (Encap.gre 9l) p in
  Alcotest.(check int) "gre adds 8" 66 (Packet.size p)

let test_packet_encap_stack () =
  let p = mk_packet () in
  Alcotest.(check bool) "not encapsulated" false (Packet.is_encapsulated p);
  let p = Packet.push_encap (Encap.mpls 7) p in
  let p = Packet.push_encap (Encap.mpls 42) p in
  Alcotest.(check (option int)) "outer label" (Some 42) (Packet.outer_mpls_label p);
  match Packet.pop_encap p with
  | Some (Encap.Mpls { label }, p') ->
    Alcotest.(check int) "popped outer" 42 label;
    Alcotest.(check (option int)) "inner now outer" (Some 7) (Packet.outer_mpls_label p')
  | _ -> Alcotest.fail "expected mpls pop"

let test_packet_flow_key_ignores_encaps () =
  let p = mk_packet () in
  let k1 = Packet.flow_key p in
  let p = Packet.push_encap (Encap.mpls 3) p in
  Alcotest.(check bool) "same key" true (Flow_key.equal k1 (Packet.flow_key p))

let test_packet_gre_key () =
  let p = Packet.push_encap (Encap.gre 77l) (mk_packet ()) in
  Alcotest.(check bool) "gre key" true (Packet.outer_gre_key p = Some 77l)

let test_packet_unique_ids () =
  let a = mk_packet () and b = mk_packet () in
  Alcotest.(check bool) "distinct packet ids" true
    (a.Packet.meta.packet_id <> b.Packet.meta.packet_id)

let test_mpls_label_range () =
  Alcotest.(check bool) "label out of range" true
    (try
       ignore (Encap.mpls 0x100000);
       false
     with Invalid_argument _ -> true)

(* ------------------------------------------------------------------ *)
(* Codec *)

let test_codec_plain_roundtrip () =
  let p = mk_packet () in
  let p' = Codec.parse ~flow_id:1 (Codec.serialize p) in
  Alcotest.(check bool) "eth src" true (Mac.equal p.Packet.eth.Ethernet.src p'.Packet.eth.Ethernet.src);
  Alcotest.(check bool) "eth dst" true (Mac.equal p.Packet.eth.Ethernet.dst p'.Packet.eth.Ethernet.dst);
  Alcotest.(check bool) "flow key" true (Flow_key.equal (Packet.flow_key p) (Packet.flow_key p'));
  Alcotest.(check int) "same size" (Packet.size p) (Packet.size p')

let test_codec_wire_length () =
  let p = mk_packet () in
  Alcotest.(check int) "wire bytes = model size" (Packet.size p)
    (Bytes.length (Codec.serialize p))

let test_codec_ip_checksum () =
  let p = mk_packet () in
  let b = Codec.serialize p in
  (* recompute the IPv4 header checksum: must be zero-sum *)
  let sum = ref 0 in
  for i = 0 to 9 do
    sum := !sum + Bytes.get_uint16_be b (14 + (2 * i))
  done;
  while !sum > 0xFFFF do
    sum := (!sum land 0xFFFF) + (!sum lsr 16)
  done;
  Alcotest.(check int) "ones-complement sum" 0xFFFF !sum

let test_codec_truncated () =
  let p = mk_packet () in
  let b = Codec.serialize p in
  Alcotest.(check bool) "truncation raises" true
    (try
       ignore (Codec.parse (Bytes.sub b 0 20));
       false
     with Codec.Parse_error _ -> true)

(* random valid packet generator: optional VLAN first, then MPLS/GRE *)
let packet_gen =
  let open QCheck.Gen in
  let addr = map Ipv4_addr.of_int (int_bound 0xFFFFFF) in
  let mac = map Mac.of_host_id (int_bound 0xFFFF) in
  let l4 =
    oneof
      [ map2 (fun s d -> L4.Tcp (Tcp.make ~src_port:s ~dst_port:d ())) (int_bound 65535)
          (int_bound 65535);
        map2 (fun s d -> L4.Udp (Udp.make ~src_port:s ~dst_port:d)) (int_bound 65535)
          (int_bound 65535) ]
  in
  let encaps =
    (* MPLS may not appear below GRE-under-MPLS in arbitrary ways; keep
       stacks the switches actually build: mpls* then gre* *)
    map2
      (fun mplses gres ->
        List.map (fun l -> Encap.mpls l) mplses @ List.map (fun k -> Encap.gre (Int32.of_int k)) gres)
      (list_size (int_bound 3) (int_bound 0xFFFFF))
      (list_size (int_bound 2) (int_bound 0xFFFF))
  in
  let vlan = opt (map (fun v -> Encap.vlan v) (int_bound 0xFFF)) in
  map2
    (fun (src_mac, dst_mac, ip_src, ip_dst) (l4, encaps, vlan, payload_len) ->
      let eth = Ethernet.make ~src:src_mac ~dst:dst_mac ~ethertype:Ethernet.ethertype_ipv4 in
      let ip = Ipv4.make ~src:ip_src ~dst:ip_dst
          ~proto:(match l4 with L4.Tcp _ -> 6 | L4.Udp _ -> 17 | L4.Other p -> p) () in
      let p = Packet.make ~payload_len ~flow_id:1 ~created:0.0 ~eth ~ip ~l4 () in
      let p = List.fold_left (fun p e -> Packet.push_encap e p) p (List.rev encaps) in
      match vlan with None -> p | Some v -> Packet.push_encap v p)
    (quad mac mac addr addr)
    (quad l4 encaps vlan (int_bound 64))

let packet_arb = QCheck.make ~print:(Format.asprintf "%a" Packet.pp) packet_gen

let prop_codec_roundtrip =
  QCheck.Test.make ~name:"codec round-trip preserves headers" ~count:300 packet_arb
    (fun p ->
      let p' = Codec.parse (Codec.serialize p) in
      Mac.equal p.Packet.eth.Ethernet.src p'.Packet.eth.Ethernet.src
      && Mac.equal p.Packet.eth.Ethernet.dst p'.Packet.eth.Ethernet.dst
      && p.Packet.encaps = p'.Packet.encaps
      && Flow_key.equal (Packet.flow_key p) (Packet.flow_key p')
      && p.Packet.payload_len = p'.Packet.payload_len
      && p.Packet.ip.Ipv4.ttl = p'.Packet.ip.Ipv4.ttl)

let prop_codec_size =
  QCheck.Test.make ~name:"serialized length >= model size" ~count:300 packet_arb
    (fun p ->
      (* GRE adds a synthetic outer IP header on the wire *)
      Bytes.length (Codec.serialize p) >= Packet.size p)

let () =
  Alcotest.run "scotch_packet"
    [ ( "mac",
        [ Alcotest.test_case "roundtrip" `Quick test_mac_roundtrip;
          Alcotest.test_case "broadcast" `Quick test_mac_broadcast;
          Alcotest.test_case "of_host_id" `Quick test_mac_of_host_id;
          Alcotest.test_case "bad string" `Quick test_mac_bad_string ] );
      ( "ipv4_addr",
        [ Alcotest.test_case "roundtrip" `Quick test_ip_roundtrip;
          Alcotest.test_case "prefix mask" `Quick test_ip_prefix_mask;
          Alcotest.test_case "matches" `Quick test_ip_matches;
          Alcotest.test_case "octet range" `Quick test_ip_octet_range ] );
      ( "flow_key",
        [ Alcotest.test_case "equality" `Quick test_flow_key_equal;
          Alcotest.test_case "hash non-negative" `Quick test_flow_key_hash_nonnegative;
          Alcotest.test_case "hash spread (LB fairness)" `Quick test_flow_key_hash_spread;
          Alcotest.test_case "to_string" `Quick test_flow_key_to_string ] );
      ( "packet",
        [ Alcotest.test_case "size arithmetic" `Quick test_packet_size;
          Alcotest.test_case "encap stack" `Quick test_packet_encap_stack;
          Alcotest.test_case "flow key ignores encaps" `Quick test_packet_flow_key_ignores_encaps;
          Alcotest.test_case "gre key" `Quick test_packet_gre_key;
          Alcotest.test_case "unique packet ids" `Quick test_packet_unique_ids;
          Alcotest.test_case "mpls label range" `Quick test_mpls_label_range ] );
      ( "codec",
        [ Alcotest.test_case "plain roundtrip" `Quick test_codec_plain_roundtrip;
          Alcotest.test_case "wire length" `Quick test_codec_wire_length;
          Alcotest.test_case "ip checksum" `Quick test_codec_ip_checksum;
          Alcotest.test_case "truncated input" `Quick test_codec_truncated;
          QCheck_alcotest.to_alcotest prop_codec_roundtrip;
          QCheck_alcotest.to_alcotest prop_codec_size ] ) ]
