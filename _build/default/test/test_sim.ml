(* Tests for Scotch_sim: the discrete-event engine and links. *)

open Scotch_sim
open Scotch_packet

(* ------------------------------------------------------------------ *)
(* Engine *)

let test_engine_ordering () =
  let e = Engine.create () in
  let log = ref [] in
  ignore (Engine.schedule e ~delay:2.0 (fun () -> log := "c" :: !log));
  ignore (Engine.schedule e ~delay:1.0 (fun () -> log := "a" :: !log));
  ignore (Engine.schedule e ~delay:1.5 (fun () -> log := "b" :: !log));
  Engine.run e;
  Alcotest.(check (list string)) "time order" [ "a"; "b"; "c" ] (List.rev !log)

let test_engine_fifo_ties () =
  let e = Engine.create () in
  let log = ref [] in
  for i = 1 to 5 do
    ignore (Engine.schedule e ~delay:1.0 (fun () -> log := i :: !log))
  done;
  Engine.run e;
  Alcotest.(check (list int)) "insertion order at equal time" [ 1; 2; 3; 4; 5 ]
    (List.rev !log)

let test_engine_now_advances () =
  let e = Engine.create () in
  let seen = ref 0.0 in
  ignore (Engine.schedule e ~delay:3.25 (fun () -> seen := Engine.now e));
  Engine.run e;
  Alcotest.(check (float 1e-12)) "now at event" 3.25 !seen

let test_engine_past_raises () =
  let e = Engine.create () in
  ignore (Engine.schedule e ~delay:1.0 (fun () -> ()));
  Engine.run e;
  Alcotest.(check bool) "scheduling in the past raises" true
    (try
       ignore (Engine.schedule_at e ~at:0.5 (fun () -> ()));
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "negative delay raises" true
    (try
       ignore (Engine.schedule e ~delay:(-1.0) (fun () -> ()));
       false
     with Invalid_argument _ -> true)

let test_engine_cancel () =
  let e = Engine.create () in
  let fired = ref false in
  let h = Engine.schedule e ~delay:1.0 (fun () -> fired := true) in
  Engine.cancel h;
  Engine.run e;
  Alcotest.(check bool) "cancelled" false !fired

let test_engine_run_until () =
  let e = Engine.create () in
  let count = ref 0 in
  for i = 1 to 10 do
    ignore (Engine.schedule e ~delay:(float_of_int i) (fun () -> incr count))
  done;
  Engine.run ~until:5.5 e;
  Alcotest.(check int) "five fired" 5 !count;
  Alcotest.(check (float 1e-12)) "clock at limit" 5.5 (Engine.now e);
  Engine.run e;
  Alcotest.(check int) "rest fired" 10 !count

let test_engine_every () =
  let e = Engine.create () in
  let count = ref 0 in
  let stop = Engine.every e ~period:1.0 (fun () -> incr count) in
  ignore (Engine.schedule e ~delay:5.5 (fun () -> stop ()));
  Engine.run e;
  Alcotest.(check int) "five ticks then stopped" 5 !count

let test_engine_nested_schedule () =
  let e = Engine.create () in
  let log = ref [] in
  ignore
    (Engine.schedule e ~delay:1.0 (fun () ->
         log := "outer" :: !log;
         ignore (Engine.schedule e ~delay:1.0 (fun () -> log := "inner" :: !log))));
  Engine.run e;
  Alcotest.(check (list string)) "nested" [ "outer"; "inner" ] (List.rev !log);
  Alcotest.(check (float 1e-12)) "final time" 2.0 (Engine.now e)

let test_engine_processed () =
  let e = Engine.create () in
  for _ = 1 to 3 do
    ignore (Engine.schedule e ~delay:1.0 (fun () -> ()))
  done;
  Engine.run e;
  Alcotest.(check int) "processed" 3 (Engine.processed e)

let test_engine_step () =
  let e = Engine.create () in
  Alcotest.(check bool) "empty step" false (Engine.step e);
  ignore (Engine.schedule e ~delay:1.0 (fun () -> ()));
  Alcotest.(check bool) "step runs" true (Engine.step e);
  Alcotest.(check int) "pending drained" 0 (Engine.pending e)

(* ------------------------------------------------------------------ *)
(* Link *)

let mk_pkt ?(payload = 986) () =
  (* payload chosen so total size = 1040 B => 1040*8 bits *)
  Packet.udp_data ~payload_len:payload ~flow_id:1 ~created:0.0 ~src_mac:(Mac.of_host_id 1)
    ~dst_mac:(Mac.of_host_id 2) ~ip_src:(Ipv4_addr.make 10 0 0 1)
    ~ip_dst:(Ipv4_addr.make 10 0 0 2) ~src_port:1 ~dst_port:2 ()

let test_link_delivery_time () =
  let e = Engine.create () in
  let link = Link.create e ~name:"l" ~bandwidth_bps:1e6 ~latency:0.01 ~queue_capacity:10 in
  let arrival = ref nan in
  Link.connect link (fun _ -> arrival := Engine.now e);
  let pkt = mk_pkt () in
  let expected = (float_of_int (Packet.size pkt * 8) /. 1e6) +. 0.01 in
  Link.send link pkt;
  Engine.run e;
  Alcotest.(check (float 1e-9)) "tx + propagation" expected !arrival;
  Alcotest.(check int) "delivered" 1 (Link.delivered link);
  Alcotest.(check int) "bytes" (Packet.size pkt) (Link.bytes_delivered link)

let test_link_serialization () =
  (* two packets sent together: second arrives one transmission later *)
  let e = Engine.create () in
  let link = Link.create e ~name:"l" ~bandwidth_bps:1e6 ~latency:0.0 ~queue_capacity:10 in
  let times = ref [] in
  Link.connect link (fun _ -> times := Engine.now e :: !times);
  let pkt = mk_pkt () in
  let tx = float_of_int (Packet.size pkt * 8) /. 1e6 in
  Link.send link pkt;
  Link.send link (mk_pkt ());
  Engine.run e;
  match List.rev !times with
  | [ t1; t2 ] ->
    Alcotest.(check (float 1e-9)) "first" tx t1;
    Alcotest.(check (float 1e-9)) "second" (2.0 *. tx) t2
  | _ -> Alcotest.fail "expected two deliveries"

let test_link_queue_overflow () =
  let e = Engine.create () in
  let link = Link.create e ~name:"l" ~bandwidth_bps:1e6 ~latency:0.0 ~queue_capacity:2 in
  Link.connect link (fun _ -> ());
  (* 1 in transmission + 2 queued + 2 dropped *)
  for _ = 1 to 5 do
    Link.send link (mk_pkt ())
  done;
  Engine.run e;
  Alcotest.(check int) "delivered" 3 (Link.delivered link);
  Alcotest.(check int) "dropped" 2 (Link.dropped link)

let test_link_validation () =
  let e = Engine.create () in
  Alcotest.(check bool) "zero bandwidth rejected" true
    (try
       ignore (Link.create e ~name:"bad" ~bandwidth_bps:0.0 ~latency:0.0 ~queue_capacity:1);
       false
     with Invalid_argument _ -> true)

let test_link_units () =
  Alcotest.(check (float 1.0)) "gbps" 1e9 (Link.gbps 1.0);
  Alcotest.(check (float 1.0)) "mbps" 45.6e6 (Link.mbps 45.6)

let () =
  Alcotest.run "scotch_sim"
    [ ( "engine",
        [ Alcotest.test_case "time ordering" `Quick test_engine_ordering;
          Alcotest.test_case "FIFO at ties" `Quick test_engine_fifo_ties;
          Alcotest.test_case "now advances" `Quick test_engine_now_advances;
          Alcotest.test_case "past scheduling raises" `Quick test_engine_past_raises;
          Alcotest.test_case "cancel" `Quick test_engine_cancel;
          Alcotest.test_case "run until" `Quick test_engine_run_until;
          Alcotest.test_case "every/stop" `Quick test_engine_every;
          Alcotest.test_case "nested schedule" `Quick test_engine_nested_schedule;
          Alcotest.test_case "processed count" `Quick test_engine_processed;
          Alcotest.test_case "step" `Quick test_engine_step ] );
      ( "link",
        [ Alcotest.test_case "delivery time" `Quick test_link_delivery_time;
          Alcotest.test_case "serialization" `Quick test_link_serialization;
          Alcotest.test_case "queue overflow" `Quick test_link_queue_overflow;
          Alcotest.test_case "validation" `Quick test_link_validation;
          Alcotest.test_case "unit helpers" `Quick test_link_units ] ) ]
