(* Tests for Scotch_openflow: match semantics, actions/instructions,
   message construction and wire-codec round trips. *)

open Scotch_openflow
open Scotch_packet

let mk_packet ?(src_port = 1234) ?(dst_port = 80) () =
  Packet.tcp_syn ~flow_id:1 ~created:0.0 ~src_mac:(Mac.of_host_id 1)
    ~dst_mac:(Mac.of_host_id 2) ~ip_src:(Ipv4_addr.make 10 0 0 1)
    ~ip_dst:(Ipv4_addr.make 10 0 0 2) ~src_port ~dst_port ()

let ctx ?tunnel_id ?(in_port = 1) pkt = Of_match.context ?tunnel_id ~in_port pkt

(* ------------------------------------------------------------------ *)
(* Port numbers *)

let test_port_no_roundtrip () =
  List.iter
    (fun p ->
      Alcotest.(check bool) "roundtrip" true
        (Of_types.Port_no.equal p (Of_types.Port_no.of_int (Of_types.Port_no.to_int p))))
    [ Of_types.Port_no.Physical 1; Physical 10042; In_port; Controller; All; Local; Any ]

let test_port_no_invalid () =
  Alcotest.(check bool) "reserved gap rejected" true
    (try
       ignore (Of_types.Port_no.of_int 0xFFFFFF01);
       false
     with Invalid_argument _ -> true)

let test_packet_in_reason () =
  List.iter
    (fun r ->
      Alcotest.(check bool) "roundtrip" true
        (Of_types.Packet_in_reason.of_int (Of_types.Packet_in_reason.to_int r) = r))
    [ Of_types.Packet_in_reason.No_match; Action; Invalid_ttl ]

(* ------------------------------------------------------------------ *)
(* Match semantics *)

let test_wildcard_matches_everything () =
  Alcotest.(check bool) "wildcard" true (Of_match.matches Of_match.wildcard (ctx (mk_packet ())));
  Alcotest.(check bool) "is_wildcard" true (Of_match.is_wildcard Of_match.wildcard);
  Alcotest.(check int) "specificity 0" 0 (Of_match.specificity Of_match.wildcard)

let test_in_port_match () =
  let m = Of_match.with_in_port 3 Of_match.wildcard in
  Alcotest.(check bool) "matches port 3" true (Of_match.matches m (ctx ~in_port:3 (mk_packet ())));
  Alcotest.(check bool) "rejects port 4" false (Of_match.matches m (ctx ~in_port:4 (mk_packet ())))

let test_exact_flow_match () =
  let pkt = mk_packet () in
  let m = Of_match.exact_flow (Packet.flow_key pkt) in
  Alcotest.(check bool) "matches own packet" true (Of_match.matches m (ctx pkt));
  let other = mk_packet ~src_port:9999 () in
  Alcotest.(check bool) "rejects other flow" false (Of_match.matches m (ctx other));
  Alcotest.(check int) "five fields" 5 (Of_match.specificity m)

let test_masked_ip_match () =
  let m =
    Of_match.with_ip_src ~mask:(Ipv4_addr.prefix_mask 8) (Ipv4_addr.make 10 0 0 0)
      Of_match.wildcard
  in
  Alcotest.(check bool) "in prefix" true (Of_match.matches m (ctx (mk_packet ())));
  let outside =
    Packet.tcp_syn ~flow_id:2 ~created:0.0 ~src_mac:(Mac.of_host_id 1)
      ~dst_mac:(Mac.of_host_id 2) ~ip_src:(Ipv4_addr.make 11 0 0 1)
      ~ip_dst:(Ipv4_addr.make 10 0 0 2) ~src_port:1 ~dst_port:80 ()
  in
  Alcotest.(check bool) "out of prefix" false (Of_match.matches m (ctx outside))

let test_mpls_match () =
  let m = Of_match.with_mpls_label 42 Of_match.wildcard in
  let plain = mk_packet () in
  Alcotest.(check bool) "no label" false (Of_match.matches m (ctx plain));
  let labeled = Packet.push_encap (Headers.Encap.mpls 42) plain in
  Alcotest.(check bool) "right label" true (Of_match.matches m (ctx labeled));
  let wrong = Packet.push_encap (Headers.Encap.mpls 7) plain in
  Alcotest.(check bool) "wrong label" false (Of_match.matches m (ctx wrong))

let test_tunnel_match () =
  let m = Of_match.with_tunnel_id 5 Of_match.wildcard in
  Alcotest.(check bool) "tunnel 5" true (Of_match.matches m (ctx ~tunnel_id:5 (mk_packet ())));
  Alcotest.(check bool) "no tunnel" false (Of_match.matches m (ctx (mk_packet ())));
  Alcotest.(check bool) "other tunnel" false (Of_match.matches m (ctx ~tunnel_id:6 (mk_packet ())))

let test_l4_and_proto_match () =
  let m = Of_match.(wildcard |> with_ip_proto 6 |> with_l4_dst 80) in
  Alcotest.(check bool) "tcp :80" true (Of_match.matches m (ctx (mk_packet ())));
  Alcotest.(check bool) "tcp :81" false
    (Of_match.matches m (ctx (mk_packet ~dst_port:81 ())))

(* ------------------------------------------------------------------ *)
(* Actions and instructions *)

let test_instruction_helpers () =
  let instrs =
    [ Of_action.Apply_actions [ Of_action.Push_mpls 1 ]; Of_action.Goto_table 1;
      Of_action.Apply_actions [ Of_action.Output (Of_types.Port_no.Physical 2) ] ]
  in
  Alcotest.(check int) "actions flattened" 2
    (List.length (Of_action.actions_of_instructions instrs));
  Alcotest.(check (option int)) "goto found" (Some 1)
    (Of_action.goto_of_instructions instrs);
  Alcotest.(check (option int)) "no goto" None
    (Of_action.goto_of_instructions (Of_action.output (Of_types.Port_no.Physical 1)))

(* ------------------------------------------------------------------ *)
(* Wire codec *)

let roundtrip msg =
  let msg' = Of_wire.decode (Of_wire.encode msg) in
  Alcotest.(check int) "xid" msg.Of_msg.xid msg'.Of_msg.xid;
  msg'

let test_wire_simple_messages () =
  List.iter
    (fun payload ->
      let msg' = roundtrip (Of_msg.make ~xid:7 payload) in
      Alcotest.(check bool) "payload preserved" true (msg'.Of_msg.payload = payload))
    [ Of_msg.Hello; Of_msg.Echo_request; Of_msg.Echo_reply; Of_msg.Barrier_request;
      Of_msg.Barrier_reply; Of_msg.Error "table full"; Of_msg.Table_stats_request ]

let test_wire_flow_mod () =
  let fm =
    Of_msg.Flow_mod.add ~table_id:1 ~priority:10 ~idle_timeout:10.0 ~hard_timeout:30.5
      ~cookie:0x5C07C4EEL
      ~match_:(Of_match.exact_flow (Packet.flow_key (mk_packet ())))
      ~instructions:
        [ Of_action.Apply_actions [ Of_action.Push_mpls 3; Of_action.Pop_gre ];
          Of_action.Goto_table 1 ]
      ()
  in
  let msg' = roundtrip (Of_msg.make ~xid:1 (Of_msg.Flow_mod fm)) in
  match msg'.Of_msg.payload with
  | Of_msg.Flow_mod fm' -> Alcotest.(check bool) "equal" true (fm = fm')
  | _ -> Alcotest.fail "wrong payload type"

let test_wire_group_mod () =
  let gm =
    Of_msg.Group_mod.add_select ~group_id:1
      ~buckets:
        [ Of_msg.Group_mod.bucket [ Of_action.Output (Of_types.Port_no.Physical 10001) ];
          Of_msg.Group_mod.bucket ~weight:3
            [ Of_action.Output (Of_types.Port_no.Physical 10002) ] ]
  in
  let msg' = roundtrip (Of_msg.make ~xid:2 (Of_msg.Group_mod gm)) in
  match msg'.Of_msg.payload with
  | Of_msg.Group_mod gm' -> Alcotest.(check bool) "equal" true (gm = gm')
  | _ -> Alcotest.fail "wrong payload type"

let test_wire_packet_in_out () =
  let pkt = Packet.push_encap (Headers.Encap.mpls 9) (mk_packet ()) in
  let pi =
    Of_msg.Packet_in.make ~tunnel_id:44 ~reason:Of_types.Packet_in_reason.No_match ~in_port:3
      pkt
  in
  let msg' = roundtrip (Of_msg.make ~xid:3 (Of_msg.Packet_in pi)) in
  (match msg'.Of_msg.payload with
  | Of_msg.Packet_in pi' ->
    Alcotest.(check (option int)) "tunnel id" (Some 44) pi'.Of_msg.Packet_in.tunnel_id;
    Alcotest.(check int) "in_port" 3 pi'.Of_msg.Packet_in.in_port;
    Alcotest.(check (option int)) "label survives" (Some 9)
      (Packet.outer_mpls_label pi'.Of_msg.Packet_in.packet)
  | _ -> Alcotest.fail "wrong payload type");
  let po = Of_msg.Packet_out.make ~in_port:1 ~actions:[ Of_action.Pop_mpls ] pkt in
  let msg' = roundtrip (Of_msg.make ~xid:4 (Of_msg.Packet_out po)) in
  match msg'.Of_msg.payload with
  | Of_msg.Packet_out po' ->
    Alcotest.(check bool) "actions" true (po'.Of_msg.Packet_out.actions = [ Of_action.Pop_mpls ])
  | _ -> Alcotest.fail "wrong payload type"

let test_wire_stats () =
  let stat =
    { Of_msg.Stats.table_id = 0; priority = 10;
      match_ = Of_match.exact_flow (Packet.flow_key (mk_packet ()));
      packet_count = 1234; byte_count = 567890; duration = 12.5; cookie = 7L }
  in
  let msg' = roundtrip (Of_msg.make ~xid:5 (Of_msg.Flow_stats_reply [ stat; stat ])) in
  (match msg'.Of_msg.payload with
  | Of_msg.Flow_stats_reply [ s1; s2 ] ->
    Alcotest.(check bool) "stats equal" true (s1 = stat && s2 = stat)
  | _ -> Alcotest.fail "wrong payload");
  let msg' =
    roundtrip (Of_msg.make ~xid:6 (Of_msg.Table_stats_reply { active_entries = [ 3; 0 ] }))
  in
  match msg'.Of_msg.payload with
  | Of_msg.Table_stats_reply { active_entries } ->
    Alcotest.(check (list int)) "entries" [ 3; 0 ] active_entries
  | _ -> Alcotest.fail "wrong payload"

let test_wire_bad_version () =
  let b = Of_wire.encode (Of_msg.make ~xid:1 Of_msg.Hello) in
  Bytes.set_uint8 b 0 0x01;
  Alcotest.(check bool) "bad version raises" true
    (try
       ignore (Of_wire.decode b);
       false
     with Of_wire.Parse_error _ -> true)

let test_wire_bad_length () =
  let b = Of_wire.encode (Of_msg.make ~xid:1 Of_msg.Hello) in
  let b = Bytes.cat b (Bytes.make 3 'x') in
  Alcotest.(check bool) "length mismatch raises" true
    (try
       ignore (Of_wire.decode b);
       false
     with Of_wire.Parse_error _ -> true)

(* qcheck: random matches round-trip *)
let match_gen =
  let open QCheck.Gen in
  let addr = map Ipv4_addr.of_int (int_bound 0xFFFFFFF) in
  let field_adders =
    [ map (fun p m -> Of_match.with_in_port p m) (int_bound 100);
      map (fun e m -> Of_match.with_eth_type e m) (int_bound 0xFFFF);
      map (fun a m -> Of_match.with_ip_src a m) addr;
      map2
        (fun a l m -> Of_match.with_ip_src ~mask:(Ipv4_addr.prefix_mask l) a m)
        addr (int_bound 32);
      map (fun a m -> Of_match.with_ip_dst a m) addr;
      map (fun p m -> Of_match.with_ip_proto p m) (int_bound 255);
      map (fun p m -> Of_match.with_l4_src p m) (int_bound 65535);
      map (fun p m -> Of_match.with_l4_dst p m) (int_bound 65535);
      map (fun l m -> Of_match.with_mpls_label l m) (int_bound 0xFFFFF);
      map (fun k m -> Of_match.with_gre_key (Int32.of_int k) m) (int_bound 0xFFFF);
      map (fun t m -> Of_match.with_tunnel_id t m) (int_bound 1000) ]
  in
  map
    (fun adders -> List.fold_left (fun m f -> f m) Of_match.wildcard adders)
    (list_size (int_bound 6) (oneof field_adders))

let prop_match_wire_roundtrip =
  QCheck.Test.make ~name:"match wire round-trip" ~count:500
    (QCheck.make ~print:(Format.asprintf "%a" Of_match.pp) match_gen)
    (fun m ->
      let fm = Of_msg.Flow_mod.add ~match_:m ~instructions:Of_action.drop () in
      match
        (Of_wire.decode (Of_wire.encode (Of_msg.make ~xid:0 (Of_msg.Flow_mod fm)))).Of_msg.payload
      with
      | Of_msg.Flow_mod fm' -> Of_match.equal fm'.Of_msg.Flow_mod.match_ m
      | _ -> false)

let action_gen =
  let open QCheck.Gen in
  oneof
    [ map (fun p -> Of_action.Output (Of_types.Port_no.Physical p)) (int_bound 20000);
      return (Of_action.Output Of_types.Port_no.Controller);
      return (Of_action.Output Of_types.Port_no.All);
      map (fun g -> Of_action.Group g) (int_bound 100);
      map (fun l -> Of_action.Push_mpls l) (int_bound 0xFFFFF);
      return Of_action.Pop_mpls;
      map (fun k -> Of_action.Push_gre (Int32.of_int k)) (int_bound 0xFFFF);
      return Of_action.Pop_gre;
      map (fun i -> Of_action.Set_eth_dst (Mac.of_host_id i)) (int_bound 0xFFFF);
      map (fun i -> Of_action.Set_eth_src (Mac.of_host_id i)) (int_bound 0xFFFF);
      return Of_action.Dec_ttl;
      return Of_action.Drop ]

let prop_actions_wire_roundtrip =
  QCheck.Test.make ~name:"action list wire round-trip" ~count:500
    (QCheck.make QCheck.Gen.(list_size (int_bound 8) action_gen))
    (fun actions ->
      let po = Of_msg.Packet_out.make ~in_port:1 ~actions (mk_packet ()) in
      match
        (Of_wire.decode (Of_wire.encode (Of_msg.make ~xid:0 (Of_msg.Packet_out po)))).Of_msg.payload
      with
      | Of_msg.Packet_out po' -> po'.Of_msg.Packet_out.actions = actions
      | _ -> false)

(* fuzz: corrupting any byte of a valid message must either decode to
   SOME message or raise Parse_error — never crash or loop *)
let prop_decode_total =
  let base =
    Of_wire.encode
      (Of_msg.make ~xid:3
         (Of_msg.Flow_mod
            (Of_msg.Flow_mod.add
               ~match_:(Of_match.exact_flow (Packet.flow_key (mk_packet ())))
               ~instructions:(Of_action.output (Of_types.Port_no.Physical 1))
               ())))
  in
  QCheck.Test.make ~name:"decode never crashes on corrupted input" ~count:1000
    QCheck.(pair small_nat (int_bound 255))
    (fun (pos, value) ->
      let b = Bytes.copy base in
      let pos = pos mod Bytes.length b in
      Bytes.set_uint8 b pos value;
      match Of_wire.decode b with
      | (_ : Of_msg.t) -> true
      | exception Of_wire.Parse_error _ -> true
      | exception Scotch_packet.Codec.Parse_error _ -> true
      | exception Invalid_argument _ -> true (* out-of-range field values *))

let () =
  Alcotest.run "scotch_openflow"
    [ ( "types",
        [ Alcotest.test_case "port_no roundtrip" `Quick test_port_no_roundtrip;
          Alcotest.test_case "port_no invalid" `Quick test_port_no_invalid;
          Alcotest.test_case "packet_in reason" `Quick test_packet_in_reason ] );
      ( "match",
        [ Alcotest.test_case "wildcard" `Quick test_wildcard_matches_everything;
          Alcotest.test_case "in_port" `Quick test_in_port_match;
          Alcotest.test_case "exact flow" `Quick test_exact_flow_match;
          Alcotest.test_case "masked ip" `Quick test_masked_ip_match;
          Alcotest.test_case "mpls label" `Quick test_mpls_match;
          Alcotest.test_case "tunnel id" `Quick test_tunnel_match;
          Alcotest.test_case "proto + l4" `Quick test_l4_and_proto_match ] );
      ("actions", [ Alcotest.test_case "instruction helpers" `Quick test_instruction_helpers ]);
      ( "wire",
        [ Alcotest.test_case "simple messages" `Quick test_wire_simple_messages;
          Alcotest.test_case "flow_mod" `Quick test_wire_flow_mod;
          Alcotest.test_case "group_mod" `Quick test_wire_group_mod;
          Alcotest.test_case "packet in/out" `Quick test_wire_packet_in_out;
          Alcotest.test_case "stats" `Quick test_wire_stats;
          Alcotest.test_case "bad version" `Quick test_wire_bad_version;
          Alcotest.test_case "bad length" `Quick test_wire_bad_length;
          QCheck_alcotest.to_alcotest prop_match_wire_roundtrip;
          QCheck_alcotest.to_alcotest prop_actions_wire_roundtrip;
          QCheck_alcotest.to_alcotest prop_decode_total ] ) ]
