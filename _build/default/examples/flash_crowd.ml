(* Flash crowd: benign overload.

   The paper stresses that control-path congestion is not only caused
   by attacks — a flash crowd of legitimate short flows has the same
   signature.  This example replays a synthetic trace whose arrival
   rate jumps 25x for ten seconds, and shows the overlay activating for
   the burst and automatically withdrawing afterwards (§5.5).

   Run with: dune exec examples/flash_crowd.exe *)

open Scotch_experiments
open Scotch_workload

let () =
  let params =
    { Tracegen.duration = 40.0;
      base_rate = 30.0;
      flash_start = 10.0;
      flash_end = 20.0;
      flash_multiplier = 25.0;
      hotspot_fraction = 0.8;
      num_sources = 3;
      num_destinations = 2;
      size_of = Sizes.pareto ~alpha:1.4 ~min_packets:2 ~max_packets:100 ~pkt_rate:200.0 () }
  in
  let net =
    Testbed.scotch_net ~num_clients:params.Tracegen.num_sources
      ~num_servers:params.Tracegen.num_destinations ()
  in
  let rng = Scotch_util.Rng.create 99 in
  let trace = Tracegen.generate rng params in
  Printf.printf "trace: %d flows, %d packets, flash x%.0f during [%.0f, %.0f] s\n\n"
    (List.length trace) (Tracegen.total_packets trace) params.Tracegen.flash_multiplier
    params.Tracegen.flash_start params.Tracegen.flash_end;
  let sources =
    Array.init params.Tracegen.num_sources (fun i -> Testbed.client_source net ~i ~rate:1.0 ())
  in
  let _launched =
    Tracegen.replay net.Testbed.engine trace ~sources ~destinations:net.Testbed.servers
  in
  (* sample the overlay state every second *)
  let (_ : unit -> unit) =
    Scotch_sim.Engine.every net.Testbed.engine ~period:1.0 (fun () ->
        let t = Scotch_sim.Engine.now net.Testbed.engine in
        let active = Scotch_core.Scotch.is_active net.Testbed.app Testbed.edge_dpid in
        let db = Scotch_core.Scotch.db net.Testbed.app in
        Printf.printf "t=%5.1fs overlay %s  (flows on overlay: %d, on physical: %d)\n" t
          (if active then "ACTIVE " else "idle   ")
          (Scotch_core.Flow_info_db.overlay_count db)
          (Scotch_core.Flow_info_db.physical_count db))
  in
  Testbed.run_until net ~until:(params.Tracegen.duration +. 2.0);
  let total_delivered =
    Array.fold_left (fun acc s -> acc + Scotch_topo.Host.flows_seen s) 0 net.Testbed.servers
  in
  Printf.printf "\nflows delivered: %d / %d\n" total_delivered (List.length trace)
