examples/elephant_migration.mli:
