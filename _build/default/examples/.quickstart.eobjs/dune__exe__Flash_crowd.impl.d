examples/flash_crowd.ml: Array List Printf Scotch_core Scotch_experiments Scotch_sim Scotch_topo Scotch_util Scotch_workload Sizes Testbed Tracegen
