examples/flash_crowd.mli:
