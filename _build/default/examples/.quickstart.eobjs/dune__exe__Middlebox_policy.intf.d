examples/middlebox_policy.mli:
