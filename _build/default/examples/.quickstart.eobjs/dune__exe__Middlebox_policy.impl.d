examples/middlebox_policy.ml: Array Flow_gen Host Middlebox Option Printf Scotch_core Scotch_experiments Scotch_packet Scotch_sim Scotch_topo Scotch_util Scotch_workload Source Testbed
