examples/quickstart.ml: Host Ofa Printf Profile Scotch_controller Scotch_sim Scotch_switch Scotch_topo Scotch_util Scotch_workload Source Switch Topology
