examples/ddos_mitigation.ml: Printf Scotch_core Scotch_experiments Scotch_workload Source Testbed
