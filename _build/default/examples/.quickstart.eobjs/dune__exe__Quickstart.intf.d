examples/quickstart.mli:
