(* Elephant-flow migration (§5.3).

   While the overlay carries a flood of mice, a handful of elephant
   flows start.  The controller polls vswitch flow statistics, spots
   the elephants by packet rate, and migrates them onto physical paths
   (rules installed destination-first, the ingress switch last).  Watch
   their one-way delay drop when they leave the three-tunnel detour.

   Run with: dune exec examples/elephant_migration.exe *)

open Scotch_experiments
open Scotch_workload

let () =
  (* overlay_threshold = 0: every new flow is diverted onto the overlay —
     the deterministic way to watch a migration; under a real flood the
     same happens to whatever exceeds the threshold (see fig12) *)
  let config =
    { Scotch_core.Config.default with Scotch_core.Config.overlay_threshold = 0 }
  in
  let net = Testbed.scotch_net ~config () in
  let src = Testbed.client_source net ~i:0 ~rate:1.0 () in
  let elephant = ref None in
  ignore
    (Scotch_sim.Engine.schedule_at net.Testbed.engine ~at:3.0 (fun () ->
         let l =
           Source.launch_flow src
             ~spec:{ Flow_gen.packets = 40_000; payload = 1000; interval = 0.0005 }
         in
         Printf.printf "t=3.0s elephant %s launched (2000 pkt/s)\n"
           (Scotch_packet.Flow_key.to_string l.Flow_gen.key);
         elephant := Some l));
  let (_ : unit -> unit) =
    Scotch_sim.Engine.every net.Testbed.engine ~period:1.0 (fun () ->
        match !elephant with
        | None -> ()
        | Some l -> (
          let db = Scotch_core.Scotch.db net.Testbed.app in
          match Scotch_core.Flow_info_db.find db l.Flow_gen.key with
          | None -> ()
          | Some e ->
            let kind =
              match e.Scotch_core.Flow_info_db.kind with
              | Scotch_core.Flow_info_db.Overlay _ -> "overlay (3 tunnels)"
              | Scotch_core.Flow_info_db.Physical -> "physical path"
              | Scotch_core.Flow_info_db.Pending -> "pending"
              | Scotch_core.Flow_info_db.Dropped -> "dropped"
            in
            let r = Scotch_topo.Host.flow_record net.Testbed.server l.Flow_gen.flow_id in
            let delay =
              match r with
              | Some r when r.Scotch_topo.Host.packets > 0 ->
                r.Scotch_topo.Host.delay_sum /. float_of_int r.Scotch_topo.Host.packets *. 1e6
              | _ -> 0.0
            in
            Printf.printf "t=%4.1fs elephant on %-20s mean delay so far: %5.0f us\n"
              (Scotch_sim.Engine.now net.Testbed.engine)
              kind delay))
  in
  Testbed.run_until net ~until:10.0;
  let c = Scotch_core.Scotch.counters net.Testbed.app in
  Printf.printf "\nelephants detected: %d, migrations completed: %d\n"
    c.Scotch_core.Scotch.elephants_detected c.Scotch_core.Scotch.migrations_completed
