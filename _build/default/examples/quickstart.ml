(* Quickstart: build a tiny SDN from scratch with the public API — one
   Pica8 switch, two hosts, a reactive controller — send traffic, and
   look at what the control path did.

   Run with: dune exec examples/quickstart.exe *)

open Scotch_switch
open Scotch_topo
open Scotch_workload
module C = Scotch_controller.Controller

let () =
  (* 1. An engine: all time and randomness flow from here. *)
  let engine = Scotch_sim.Engine.create ~seed:7 () in

  (* 2. A topology: one hardware switch, a client and a server. *)
  let topo = Topology.create engine in
  let switch = Switch.create engine ~dpid:1 ~name:"tor" ~profile:Profile.pica8 () in
  Topology.add_switch topo switch;
  let client = Host.create engine ~id:1 ~name:"client" in
  let server = Host.create engine ~id:2 ~name:"server" in
  Topology.add_host topo client;
  Topology.add_host topo server;
  Topology.attach_host topo client switch ~port:1;
  Topology.attach_host topo server switch ~port:2;

  (* 3. A controller running the plain reactive-routing app. *)
  let ctrl = C.create engine topo in
  let routing = Scotch_controller.Routing.create ctrl in
  C.register_app ctrl (Scotch_controller.Routing.app routing);
  let sw = C.connect ctrl switch ~latency:0.5e-3 in
  Scotch_controller.Routing.install_table_miss ctrl sw;

  (* 4. Traffic: 50 new flows/s from the client. *)
  let src =
    Source.create engine
      ~rng:(Scotch_util.Rng.split (Scotch_sim.Engine.rng engine))
      ~host:client ~dst:server ~rate:50.0 ()
  in
  Source.start src;

  (* 5. Run five simulated seconds and report. *)
  Scotch_sim.Engine.run ~until:5.0 engine;
  let ofa = Ofa.counters (Switch.ofa switch) in
  Printf.printf "flows launched:        %d\n" (Source.launched_count src);
  Printf.printf "flows reaching server: %d\n" (Host.flows_seen server);
  Printf.printf "Packet-In messages:    %d\n" ofa.Ofa.pin_sent;
  Printf.printf "rules installed:       %d\n" ofa.Ofa.flow_mods_handled;
  Printf.printf "failure fraction:      %.3f\n"
    (Source.failure_fraction src ~dst:server ());
  Printf.printf "mean one-way delay:    %.0f us\n"
    (Scotch_util.Stats.Samples.mean (Host.delay_samples server) *. 1e6)
