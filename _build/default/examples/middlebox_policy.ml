(* Middlebox policy consistency (§5.4).

   Flows to the protected server must traverse a stateful firewall.
   Scotch keeps this true on BOTH paths: overlay flows are steered into
   the segment by shared green rules (no per-flow state on the hardware
   switches), and a migrated elephant keeps using the SAME firewall
   instance, so the middlebox never sees a mid-connection flow without
   established state.

   Run with: dune exec examples/middlebox_policy.exe *)

open Scotch_experiments
open Scotch_workload
open Scotch_topo

let () =
  let net = Testbed.scotch_net () in
  let server_ip = Host.ip net.Testbed.server in
  (* policy: every flow to the server goes through the firewall *)
  let fw, _segment =
    Testbed.add_firewall_segment net ~classify:(fun key ->
        Scotch_packet.Ipv4_addr.equal key.Scotch_packet.Flow_key.ip_dst server_ip)
  in
  (* a flood forces the overlay on; one long flow is our protagonist *)
  let flood =
    let rng = Scotch_util.Rng.split (Scotch_sim.Engine.rng net.Testbed.engine) in
    Source.create net.Testbed.engine ~rng ~host:net.Testbed.clients.(0)
      ~dst:net.Testbed.server ~rate:1000.0 ~spoof_sources:true ()
  in
  Source.start flood;
  let src = Testbed.client_source net ~i:0 ~rate:1.0 () in
  let flow = ref None in
  ignore
    (Scotch_sim.Engine.schedule_at net.Testbed.engine ~at:3.0 (fun () ->
         flow :=
           Some
             (Source.launch_flow src
                ~spec:{ Flow_gen.packets = 20_000; payload = 1000; interval = 0.0005 })));
  Testbed.run_until net ~until:12.0;
  let l = Option.get !flow in
  let db = Scotch_core.Scotch.db net.Testbed.app in
  let kind =
    match Scotch_core.Flow_info_db.find db l.Flow_gen.key with
    | Some { Scotch_core.Flow_info_db.kind = Scotch_core.Flow_info_db.Physical; _ } ->
      "physical (migrated)"
    | Some { Scotch_core.Flow_info_db.kind = Scotch_core.Flow_info_db.Overlay _; _ } ->
      "overlay"
    | _ -> "other"
  in
  Printf.printf "protagonist flow ended on: %s\n" kind;
  Printf.printf "firewall processed packets:     %d\n" (Middlebox.processed fw);
  Printf.printf "firewall flows tracked:         %d\n" (Middlebox.flows_tracked fw);
  Printf.printf "state violations (mid-flow, no context): %d\n" (Middlebox.state_violations fw);
  Printf.printf "encapsulated arrivals (tunnel header leaked): %d\n"
    (Middlebox.encap_violations fw);
  let r = Host.flow_record net.Testbed.server l.Flow_gen.flow_id in
  (match r with
  | Some r ->
    Printf.printf "protagonist packets delivered:  %d (every one through the firewall)\n"
      r.Host.packets
  | None -> print_endline "protagonist flow was not delivered!");
  (* a couple of in-flight packets can race the first packet's
     re-injection during path setup; anything beyond that means the two
     paths used different middlebox instances *)
  if Middlebox.state_violations fw <= 5 && Middlebox.encap_violations fw = 0 then
    print_endline "\npolicy consistency held across overlay routing AND migration."
  else print_endline "\nPOLICY VIOLATION detected."
