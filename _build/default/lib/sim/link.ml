(** Point-to-point simplex link with bandwidth, propagation delay and a
    drop-tail queue.

    Transmission is modeled as a busy server: a packet occupies the link
    for [size / bandwidth] seconds, then arrives [latency] seconds later
    at the sink.  When more than [queue_capacity] packets are waiting
    the tail is dropped (counted).  The testbed links (1/10 GbE data
    ports, 1 GbE management ports, §3.2) are instances of this. *)

open Scotch_packet

type stats = {
  mutable delivered : int;
  mutable dropped : int;
  mutable bytes : int;
}

type t = {
  engine : Engine.t;
  name : string;
  bandwidth_bps : float;       (* bits per second *)
  latency : float;             (* propagation delay, seconds *)
  queue_capacity : int;        (* packets *)
  queue : Packet.t Queue.t;
  mutable busy : bool;
  mutable sink : Packet.t -> unit;
  stats : stats;
}

(** [create engine ~name ~bandwidth_bps ~latency ~queue_capacity] makes
    an idle link.  Attach the receiver with {!connect}. *)
let create engine ~name ~bandwidth_bps ~latency ~queue_capacity =
  if bandwidth_bps <= 0.0 then invalid_arg "Link.create: bandwidth must be positive";
  if latency < 0.0 then invalid_arg "Link.create: negative latency";
  { engine; name; bandwidth_bps; latency; queue_capacity; queue = Queue.create ();
    busy = false; sink = (fun _ -> ()); stats = { delivered = 0; dropped = 0; bytes = 0 } }

(** [connect t sink] sets the function receiving delivered packets. *)
let connect t sink = t.sink <- sink

let transmission_time t pkt =
  float_of_int (Packet.size pkt * 8) /. t.bandwidth_bps

let rec start_transmission t =
  match Queue.take_opt t.queue with
  | None -> t.busy <- false
  | Some pkt ->
    t.busy <- true;
    let tx = transmission_time t pkt in
    ignore
      (Engine.schedule t.engine ~delay:tx (fun () ->
           (* Packet leaves the transmitter; propagation runs in parallel
              with the next transmission. *)
           t.stats.delivered <- t.stats.delivered + 1;
           t.stats.bytes <- t.stats.bytes + Packet.size pkt;
           ignore (Engine.schedule t.engine ~delay:t.latency (fun () -> t.sink pkt));
           start_transmission t))

(** [send t pkt] enqueues [pkt] for transmission; drops (and counts) when
    the queue is full. *)
let send t pkt =
  if t.busy then begin
    if Queue.length t.queue >= t.queue_capacity then t.stats.dropped <- t.stats.dropped + 1
    else Queue.push pkt t.queue
  end
  else begin
    Queue.push pkt t.queue;
    start_transmission t
  end

let name t = t.name
let delivered t = t.stats.delivered
let dropped t = t.stats.dropped
let bytes_delivered t = t.stats.bytes
let queue_length t = Queue.length t.queue
let latency t = t.latency
let bandwidth_bps t = t.bandwidth_bps

(** Convenience bandwidth constants. *)
let gbps g = g *. 1e9
let mbps m = m *. 1e6
