lib/sim/link.ml: Engine Packet Queue Scotch_packet
