lib/sim/engine.mli: Scotch_util
