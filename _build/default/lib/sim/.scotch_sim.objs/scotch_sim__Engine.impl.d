lib/sim/engine.ml: Float Heap Int Printf Rng Scotch_util
