lib/sim/link.mli: Engine Scotch_packet
