(** Baseline reactive routing application.

    This is the plain OpenFlow workflow of §3.1: on Packet-In, admit the
    flow, compute a shortest path over the physical network, install an
    exact-match rule at every switch on the path (Step 2 of Fig. 1) and
    Packet-Out the first packet at the ingress switch.  No protection
    against control-path overload — this is what Figs. 3 and 4
    measure. *)

open Scotch_openflow
open Scotch_packet

type config = {
  idle_timeout : float; (* per-flow rule idle timeout (10 s in §6.1) *)
  rule_priority : int;
}

let default_config = { idle_timeout = 10.0; rule_priority = 10 }

type t = {
  ctrl : Controller.t;
  config : config;
  mutable flows_admitted : int;
  mutable flows_unroutable : int;
}

let create ?(config = default_config) ctrl =
  { ctrl; config; flows_admitted = 0; flows_unroutable = 0 }

(** Install the per-flow rules for [key] along [path]; each element is
    [(dpid, out_port)].  Rules go in destination-first so the last rule
    to appear is at the ingress switch (§5.3's ordering, applied here
    too). *)
let install_path t ~key ~path =
  List.iter
    (fun (dpid, out_port) ->
      match Controller.switch t.ctrl dpid with
      | None -> ()
      | Some sw ->
        Controller.install t.ctrl sw ~priority:t.config.rule_priority
          ~idle_timeout:t.config.idle_timeout ~match_:(Of_match.exact_flow key)
          ~instructions:(Of_action.output (Of_types.Port_no.Physical out_port))
          ())
    (List.rev path)

let handle_packet_in t (sw : Controller.sw) (pi : Of_msg.Packet_in.t) =
  (* Only plain (non-tunneled) Packet-Ins: overlay traffic belongs to
     the Scotch app, registered ahead of this one. *)
  match pi.Of_msg.Packet_in.tunnel_id with
  | Some _ -> false
  | None ->
    let pkt = pi.Of_msg.Packet_in.packet in
    let key = Packet.flow_key pkt in
    let topo = Controller.topo t.ctrl in
    (match
       Scotch_topo.Topology.route_to_host topo ~src:sw.Controller.dpid
         ~dst_ip:key.Flow_key.ip_dst
     with
    | None ->
      t.flows_unroutable <- t.flows_unroutable + 1;
      true
    | Some path ->
      t.flows_admitted <- t.flows_admitted + 1;
      install_path t ~key ~path;
      (* forward the buffered first packet from the ingress switch *)
      (match path with
      | (_, out_port) :: _ ->
        Controller.packet_out t.ctrl sw ~in_port:pi.Of_msg.Packet_in.in_port
          ~actions:[ Of_action.Output (Of_types.Port_no.Physical out_port) ]
          pkt
      | [] -> ());
      true)

(** Build the controller app record; register with
    {!Controller.register_app}. *)
let app t =
  Controller.app ~packet_in:(fun sw pi -> handle_packet_in t sw pi) "reactive-routing"

(** Install the table-miss rule (priority 0, wildcard → controller) on a
    switch — the default OpenFlow reactive posture. *)
let install_table_miss ctrl sw =
  Controller.install ctrl sw ~table_id:0 ~priority:0 ~match_:Of_match.wildcard
    ~instructions:Of_action.to_controller ()

let flows_admitted t = t.flows_admitted
let flows_unroutable t = t.flows_unroutable
