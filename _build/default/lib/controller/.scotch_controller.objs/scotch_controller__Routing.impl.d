lib/controller/routing.ml: Controller Flow_key List Of_action Of_match Of_msg Of_types Packet Scotch_openflow Scotch_packet Scotch_topo
