lib/controller/controller.mli: Of_action Of_match Of_msg Of_types Scotch_openflow Scotch_packet Scotch_sim Scotch_switch Scotch_topo Scotch_util Switch
