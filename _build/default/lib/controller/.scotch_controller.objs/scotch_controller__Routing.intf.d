lib/controller/routing.mli: Controller Scotch_openflow
