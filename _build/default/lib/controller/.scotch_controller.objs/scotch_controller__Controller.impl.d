lib/controller/controller.ml: Hashtbl List Of_msg Of_types Ofa Option Scotch_openflow Scotch_sim Scotch_switch Scotch_topo Scotch_util Stats Switch
