(** Baseline reactive routing application: the plain OpenFlow workflow
    of §3.1 — on Packet-In, compute a shortest path, install an
    exact-match rule at every switch on it (destination-first) and
    Packet-Out the first packet.  No protection against control-path
    overload; this is what Figs. 3 and 4 measure. *)

type config = {
  idle_timeout : float; (** per-flow rule idle timeout (10 s in §6.1) *)
  rule_priority : int;
}

val default_config : config

type t

val create : ?config:config -> Controller.t -> t

(** The Packet-In handler ([false] for tunneled Packet-Ins, which
    belong to the Scotch app). *)
val handle_packet_in : t -> Controller.sw -> Scotch_openflow.Of_msg.Packet_in.t -> bool

(** The controller app record to register. *)
val app : t -> Controller.app

(** Install the table-miss rule (priority 0, wildcard → controller) —
    the default OpenFlow reactive posture. *)
val install_table_miss : Controller.t -> Controller.sw -> unit

val flows_admitted : t -> int
val flows_unroutable : t -> int
