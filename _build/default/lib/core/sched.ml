(** Per-switch flow-management scheduler (Fig. 7).

    Three priority levels, served one item per [1/R] seconds:
    + the {e admitted flow queue} — individual rule installs for flows
      (re)admitted to the physical network — highest priority;
    + the {e large flow migration queue};
    + the {e ingress-port differentiation queues} — one FIFO per ingress
      port, served round-robin — lowest priority.

    "Such a priority order causes small flows to be forwarded on
    physical paths only after all large flows are accommodated."

    Items are thunks supplied by the Scotch application; this module
    owns only ordering, thresholds and pacing. *)

type counters = {
  mutable served_admitted : int;
  mutable served_large : int;
  mutable served_ingress : int;
  mutable diverted_overlay : int; (* ingress submissions past the overlay threshold *)
  mutable dropped : int;          (* ingress submissions past the dropping threshold *)
}

type t = {
  engine : Scotch_sim.Engine.t;
  rate : float;
  overlay_threshold : int;
  drop_threshold : int;
  differentiate : bool;
  admitted : (unit -> unit) Queue.t;
  large : (unit -> unit) Queue.t;
  ingress : (int, (unit -> unit) Queue.t) Hashtbl.t;
  mutable rr_order : int list; (* ports, round-robin cursor at head *)
  mutable stop : (unit -> unit) option;
  counters : counters;
}

let create engine ~rate ~overlay_threshold ~drop_threshold ~differentiate =
  if rate <= 0.0 then invalid_arg "Sched.create: rate must be positive";
  { engine; rate; overlay_threshold; drop_threshold; differentiate;
    admitted = Queue.create (); large = Queue.create (); ingress = Hashtbl.create 8;
    rr_order = []; stop = None;
    counters =
      { served_admitted = 0; served_large = 0; served_ingress = 0; diverted_overlay = 0;
        dropped = 0 } }

let counters t = t.counters

let ingress_queue t port =
  let port = if t.differentiate then port else 0 in
  match Hashtbl.find_opt t.ingress port with
  | Some q -> q
  | None ->
    let q = Queue.create () in
    Hashtbl.replace t.ingress port q;
    t.rr_order <- t.rr_order @ [ port ];
    q

(** [submit_ingress t ~port item] applies the Fig. 7 thresholds:
    [`Queued] (item will run when served), [`Overlay] (past the overlay
    threshold — caller must route the flow over the Scotch overlay) or
    [`Drop] (past the dropping threshold). *)
let submit_ingress t ~port item =
  let q = ingress_queue t port in
  let len = Queue.length q in
  if len >= t.drop_threshold then begin
    t.counters.dropped <- t.counters.dropped + 1;
    `Drop
  end
  else if len >= t.overlay_threshold then begin
    t.counters.diverted_overlay <- t.counters.diverted_overlay + 1;
    `Overlay
  end
  else begin
    Queue.push item q;
    `Queued
  end

(** Enqueue a rule install for an admitted (physical-path) flow. *)
let submit_admitted t item = Queue.push item t.admitted

(** Enqueue a large-flow migration request. *)
let submit_large t item = Queue.push item t.large

let next_ingress t =
  (* rotate through ports, skipping empty queues *)
  let rec go n order =
    if n = 0 then None
    else
      match order with
      | [] -> None
      | port :: rest -> (
        let order' = rest @ [ port ] in
        match Hashtbl.find_opt t.ingress port with
        | Some q when not (Queue.is_empty q) ->
          t.rr_order <- order';
          Some (Queue.pop q)
        | _ -> go (n - 1) order')
  in
  go (List.length t.rr_order) t.rr_order

let serve_one t =
  match Queue.take_opt t.admitted with
  | Some item ->
    t.counters.served_admitted <- t.counters.served_admitted + 1;
    item ()
  | None -> (
    match Queue.take_opt t.large with
    | Some item ->
      t.counters.served_large <- t.counters.served_large + 1;
      item ()
    | None -> (
      match next_ingress t with
      | Some item ->
        t.counters.served_ingress <- t.counters.served_ingress + 1;
        item ()
      | None -> ()))

(** [start t] begins serving at rate R.  Idempotent. *)
let start t =
  match t.stop with
  | Some _ -> ()
  | None ->
    let stop = Scotch_sim.Engine.every t.engine ~period:(1.0 /. t.rate) (fun () -> serve_one t) in
    t.stop <- Some stop

let stop t =
  match t.stop with
  | None -> ()
  | Some f ->
    f ();
    t.stop <- None

(** Pending rule installs in the admitted queue — the §5.3 signal that
    a switch's control plane cannot absorb more physical-path setups. *)
let admitted_backlog t = Queue.length t.admitted

(** Total backlog across ingress queues (observability/tests). *)
let ingress_backlog t =
  Hashtbl.fold (fun _ q acc -> acc + Queue.length q) t.ingress 0

let ingress_queue_length t ~port =
  let port = if t.differentiate then port else 0 in
  match Hashtbl.find_opt t.ingress port with None -> 0 | Some q -> Queue.length q
