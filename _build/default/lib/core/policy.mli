(** Middlebox policy consistency (§5.4).

    A {e segment} is a middlebox bracketed by an upstream switch S_U
    and a downstream switch S_D (Fig. 8).  Policy flows traverse the
    {e same} middlebox instance on both the overlay and the physical
    path.  Shared {e green} rules carry all overlay flows through the
    segment with no per-flow state at the physical switches; per-flow
    {e red} rules (higher priority) override them for physical paths.
    Middlebox chains are expressed by wiring segments back to back, so
    the classifier returns only the entry segment. *)

open Scotch_openflow
open Scotch_topo
open Scotch_packet

val green_priority : int
val red_priority : int

type segment = {
  seg_name : string;
  middlebox : Middlebox.t;
  s_u : int;            (** upstream switch dpid *)
  s_u_mb_port : int;    (** S_U port toward the middlebox *)
  s_d : int;            (** downstream switch dpid *)
  s_d_mb_in_port : int; (** S_D port receiving from the middlebox *)
  in_tunnels : (int, int) Hashtbl.t;  (** vswitch dpid → tunnel vswitch→S_U *)
  out_tunnels : (int, int) Hashtbl.t; (** vswitch dpid → tunnel S_D→vswitch *)
}

type t

(** Starts with no segments and a classifier admitting every flow
    without policy. *)
val create : Topology.t -> t

(** Install the flow → entry-segment mapping. *)
val set_classifier : t -> (Flow_key.t -> segment option) -> unit

val classify : t -> Flow_key.t -> segment option
val segments : t -> segment list

(** Register a segment and build its overlay attachment (tunnels from
    every vswitch to S_U and from S_D back).  The middlebox itself must
    already be wired with {!Topology.insert_middlebox}. *)
val add_segment :
  t -> Overlay.t -> name:string -> middlebox:Middlebox.t -> s_u:int -> s_u_mb_port:int ->
  s_d:int -> s_d_mb_in_port:int -> segment

(** Tunnel id from a vswitch into the segment's S_U. *)
val entry_tunnel : segment -> vswitch_dpid:int -> int option

(** The shared green rules of a segment, as [(dpid, flow_mod)] pairs
    for the Scotch app to send: per entry tunnel at S_U (straight to
    the middlebox port) and per covered destination at S_D (back into a
    delivery-bound tunnel). *)
val green_rules : t -> Overlay.t -> segment -> (int * Of_msg.Flow_mod.t) list

(** Per-flow red rules taking [key] through the segment on the physical
    network. *)
val red_rules : segment -> key:Flow_key.t -> exit_port:int -> (int * Of_msg.Flow_mod.t) list

(** Physical path for a policy flow: [Some (plain_hops, exit_port)] —
    ordinary hops before S_U and after S_D, plus S_D's output toward
    the destination (the segment's own hops are the red rules). *)
val physical_path_through :
  t -> segment -> first_hop:int -> dst_ip:Ipv4_addr.t -> ((int * int) list * int) option
