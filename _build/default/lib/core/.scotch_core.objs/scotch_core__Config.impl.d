lib/core/config.ml: Scotch_packet
