lib/core/policy.mli: Flow_key Hashtbl Ipv4_addr Middlebox Of_msg Overlay Scotch_openflow Scotch_packet Scotch_topo Topology
