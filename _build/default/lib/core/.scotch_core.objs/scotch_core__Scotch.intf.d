lib/core/scotch.mli: Config Flow_info_db Overlay Policy Sched Scotch_controller Scotch_switch Switch
