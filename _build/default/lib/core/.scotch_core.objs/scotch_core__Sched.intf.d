lib/core/sched.mli: Scotch_sim
