lib/core/overlay.mli: Hashtbl Host Scotch_packet Scotch_switch Scotch_topo Switch Topology
