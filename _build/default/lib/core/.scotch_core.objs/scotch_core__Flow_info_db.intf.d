lib/core/flow_info_db.mli: Flow_key Scotch_packet
