lib/core/overlay.ml: Hashtbl Host List Scotch_packet Scotch_switch Scotch_topo Switch Topology
