lib/core/flow_info_db.ml: Flow_key Scotch_packet
