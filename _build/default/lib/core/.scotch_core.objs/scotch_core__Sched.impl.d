lib/core/sched.ml: Hashtbl List Queue Scotch_sim
