lib/core/policy.ml: Config Flow_key Flow_mod Hashtbl Host Middlebox Of_action Of_match Of_msg Of_types Overlay Scotch_openflow Scotch_packet Scotch_switch Scotch_topo Topology
