lib/core/config.mli: Scotch_openflow Scotch_packet
