(** Middlebox policy consistency (§5.4).

    A {e segment} is a middlebox bracketed by an upstream switch S_U and
    a downstream switch S_D (Fig. 8).  Flows subject to policy must
    traverse the segment's middlebox on {e both} the overlay and the
    physical path, through the {e same} middlebox instance, because
    middleboxes are stateful.

    Rule colors follow the paper: shared {e green} rules (priority
    {!green_priority}, cookie {!Config.cookie_green}) carry {e all}
    overlay flows through the segment without per-flow state at the
    physical switches; per-flow {e red} rules (priority
    {!red_priority}) override them for flows on physical paths.

    Middlebox {e chains} are expressed by wiring segments back to back
    (the S_D of one segment is the S_U of the next), so the classifier
    returns only the entry segment. *)

open Scotch_openflow
open Scotch_topo
open Scotch_packet

let green_priority = 5
let red_priority = 10

type segment = {
  seg_name : string;
  middlebox : Middlebox.t;
  s_u : int;            (* upstream switch dpid *)
  s_u_mb_port : int;    (* S_U port toward the middlebox *)
  s_d : int;            (* downstream switch dpid *)
  s_d_mb_in_port : int; (* S_D port receiving from the middlebox *)
  in_tunnels : (int, int) Hashtbl.t;  (* vswitch dpid -> tunnel id vswitch->S_U *)
  out_tunnels : (int, int) Hashtbl.t; (* vswitch dpid -> tunnel id S_D->vswitch *)
}

type t = {
  topo : Topology.t;
  mutable segments : segment list;
  mutable classify : Flow_key.t -> segment option;
}

(** [create topo] starts with no segments and a classifier admitting
    every flow without policy. *)
let create topo = { topo; segments = []; classify = (fun _ -> None) }

(** [set_classifier t f] installs the flow → entry-segment mapping. *)
let set_classifier t f = t.classify <- f

let classify t key = t.classify key

let segments t = t.segments

(** [add_segment t overlay ~name ~middlebox ~s_u ~s_u_mb_port ~s_d
    ~s_d_mb_in_port] registers a segment and builds its overlay
    attachment: a tunnel from every overlay vswitch to S_U (entry) and
    from S_D back to every vswitch (exit).  The middlebox itself must
    already be wired with {!Topology.insert_middlebox}. *)
let add_segment t overlay ~name ~middlebox ~s_u ~s_u_mb_port ~s_d ~s_d_mb_in_port =
  let seg =
    { seg_name = name; middlebox; s_u; s_u_mb_port; s_d; s_d_mb_in_port;
      in_tunnels = Hashtbl.create 16; out_tunnels = Hashtbl.create 16 }
  in
  let su_switch = Topology.switch_exn t.topo s_u in
  let sd_switch = Topology.switch_exn t.topo s_d in
  Overlay.iter_vswitches overlay (fun (v : Overlay.vswitch_info) ->
      let vdpid = Scotch_switch.Switch.dpid v.Overlay.vsw in
      let tid_in, _ = Topology.add_tunnel_switches t.topo v.Overlay.vsw su_switch in
      let tid_out, _ = Topology.add_tunnel_switches t.topo sd_switch v.Overlay.vsw in
      Hashtbl.replace seg.in_tunnels vdpid tid_in;
      Hashtbl.replace seg.out_tunnels vdpid tid_out);
  t.segments <- seg :: t.segments;
  seg

(** Tunnel id from vswitch [vdpid] into the segment's S_U. *)
let entry_tunnel seg ~vswitch_dpid = Hashtbl.find_opt seg.in_tunnels vswitch_dpid

(** Green (shared) rules for a segment:
    - at S_U: one rule per entry tunnel — packets arriving on that
      tunnel (already decapsulated by the tunnel port) go straight to
      the middlebox port;
    - at S_D: one rule per covered destination — packets arriving from
      the middlebox are re-encapsulated toward the vswitch covering the
      destination.
    Returned as [(dpid, flow_mod)] pairs for the caller (the Scotch app)
    to send, so rule sends stay centralized and countable. *)
let green_rules t overlay seg =
  let open Of_msg in
  let su_rules =
    Hashtbl.fold
      (fun _vdpid tid acc ->
        let fm =
          Flow_mod.add ~table_id:0 ~priority:green_priority ~cookie:Config.cookie_green
            ~match_:(Of_match.with_tunnel_id tid Of_match.wildcard)
            ~instructions:(Of_action.output (Of_types.Port_no.Physical seg.s_u_mb_port))
            ()
        in
        (seg.s_u, fm) :: acc)
      seg.in_tunnels []
  in
  let sd_rules = ref [] in
  Topology.iter_hosts t.topo (fun h ->
      let ip = Host.ip h in
      match Overlay.cover_of_ip overlay ip with
      | None -> ()
      | Some cover ->
        (match Hashtbl.find_opt seg.out_tunnels cover with
        | None -> ()
        | Some tid_out ->
          let port = Topology.tunnel_port_of_id tid_out in
          let fm =
            Flow_mod.add ~table_id:0 ~priority:green_priority ~cookie:Config.cookie_green
              ~match_:
                (Of_match.wildcard
                |> Of_match.with_in_port seg.s_d_mb_in_port
                |> Of_match.with_ip_dst ip)
              ~instructions:(Of_action.output (Of_types.Port_no.Physical port))
              ()
          in
          sd_rules := (seg.s_d, fm) :: !sd_rules));
  su_rules @ !sd_rules

(** Red (per-flow) rules taking [key] through the segment on the
    physical network: at S_U output to the middlebox; at S_D continue
    along [exit_port].  Higher priority than green. *)
let red_rules seg ~key ~exit_port =
  let open Of_msg in
  [ ( seg.s_u,
      Flow_mod.add ~table_id:0 ~priority:red_priority ~cookie:Config.cookie_red
        ~match_:(Of_match.exact_flow key)
        ~instructions:(Of_action.output (Of_types.Port_no.Physical seg.s_u_mb_port))
        () );
    ( seg.s_d,
      Flow_mod.add ~table_id:0 ~priority:red_priority ~cookie:Config.cookie_red
        ~match_:(Of_match.exact_flow key)
        ~instructions:(Of_action.output (Of_types.Port_no.Physical exit_port))
        () ) ]

(** Physical path for a policy flow: ingress switch → S_U, then the
    middlebox hop, then S_D → destination host.  Returns
    [Some (plain_hops, exit_port)]: [plain_hops] are the ordinary
    per-flow forwarding hops before S_U and after S_D, and [exit_port]
    is S_D's output toward the destination (consumed by {!red_rules};
    the S_U → middlebox and S_D → exit hops themselves are the red
    rules). *)
let physical_path_through t seg ~first_hop ~dst_ip =
  match Topology.shortest_path t.topo ~src:first_hop ~dst:seg.s_u with
  | None -> None
  | Some to_su -> (
    match Topology.route_to_host t.topo ~src:seg.s_d ~dst_ip with
    | None -> None
    | Some ((_, exit_port) :: after_sd) -> Some (to_su @ after_sd, exit_port)
    | Some [] -> None)
