(** Trace-driven experiment (§6 intro: "the trace driven experiment that
    demonstrates the benefits of Scotch to the application performance
    in a realistic network environment"; reconstructed — truncated in
    §6).

    A synthetic trace with heavy-tailed flow sizes and a flash-crowd
    window (arrival rate × flash multiplier toward a hotspot server)
    is replayed twice — plain reactive control vs Scotch.  Reported:
    per-bin flow success fraction over time.  The baseline collapses
    during the flash crowd; Scotch rides it out. *)

open Scotch_workload

let bin_width = 5.0

let trace_params ~scale =
  { Tracegen.duration = 60.0 *. scale;
    base_rate = 40.0;
    flash_start = 20.0 *. scale;
    flash_end = 40.0 *. scale;
    flash_multiplier = 30.0;
    hotspot_fraction = 0.7;
    num_sources = 4;
    num_destinations = 3;
    size_of = Sizes.pareto ~alpha:1.3 ~min_packets:2 ~max_packets:200 ~pkt_rate:200.0 () }

let run_variant ?(seed = 42) ~scotch_enabled ~params () =
  let net =
    Testbed.scotch_net ~seed ~num_clients:params.Tracegen.num_sources
      ~num_servers:params.Tracegen.num_destinations ~scotch_enabled ()
  in
  let rng = Scotch_util.Rng.create (seed + 17) in
  let trace = Tracegen.generate rng params in
  let sources =
    Array.init params.Tracegen.num_sources (fun i -> Testbed.client_source net ~i ~rate:1.0 ())
  in
  let launched = Tracegen.replay net.Testbed.engine trace ~sources ~destinations:net.Testbed.servers in
  Testbed.run_until net ~until:(params.Tracegen.duration +. 2.0);
  (* per-bin success fraction *)
  let nbins = int_of_float (params.Tracegen.duration /. bin_width) + 1 in
  let total = Array.make nbins 0 and ok = Array.make nbins 0 in
  List.iteri
    (fun i (ev : Tracegen.flow_event) ->
      match launched.(i) with
      | None -> ()
      | Some l ->
        let bin = int_of_float (ev.Tracegen.at /. bin_width) in
        if bin < nbins then begin
          total.(bin) <- total.(bin) + 1;
          let dst = net.Testbed.servers.(ev.Tracegen.dst) in
          match Scotch_topo.Host.flow_record dst l.Flow_gen.flow_id with
          | Some _ -> ok.(bin) <- ok.(bin) + 1
          | None -> ()
        end)
    trace;
  let points = ref [] in
  for bin = nbins - 1 downto 0 do
    if total.(bin) > 0 then
      points :=
        (float_of_int bin *. bin_width, float_of_int ok.(bin) /. float_of_int total.(bin))
        :: !points
  done;
  !points

let run ?(seed = 42) ?(scale = 1.0) () : Report.figure =
  let params = trace_params ~scale in
  { Report.id = "fig15";
    title =
      Printf.sprintf
        "Trace-driven flash crowd (x%.0f burst during [%.0f,%.0f] s): flow success over time"
        params.Tracegen.flash_multiplier params.Tracegen.flash_start params.Tracegen.flash_end;
    x_label = "time (s)";
    y_label = "flow success fraction (per 5 s bin)";
    series =
      [ { Report.label = "Scotch"; points = run_variant ~seed ~scotch_enabled:true ~params () };
        { Report.label = "baseline (reactive)";
          points = run_variant ~seed ~scotch_enabled:false ~params () } ] }
