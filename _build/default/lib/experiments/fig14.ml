(** Extra delay of overlay forwarding (§6 intro: "the extra delay
    incurred by the Scotch overlay traffic relay"; reconstructed —
    truncated in §6).

    A packet routed over the overlay "traverses three tunnels before
    reaching its destination" (§4.1) plus two vswitch data planes; a
    physical-path packet crosses the two switches directly.  Reported:
    one-way packet delay percentiles for the two paths. *)

open Scotch_workload
open Scotch_core

let percentiles = [ 10.; 25.; 50.; 75.; 90.; 99. ]
let flow_packets = 3000
let pkt_rate = 500.0

(** [force_overlay]: with the overlay threshold at 0 every new flow is
    diverted onto the overlay (and the first one activates the switch);
    with defaults and no load, flows get physical paths. *)
let run_variant ?(seed = 42) ~force_overlay () =
  let config =
    if force_overlay then
      { Config.default with
        Config.overlay_threshold = 0;
        migration_enabled = false (* keep the flow on the overlay *) }
    else Config.default
  in
  let net = Testbed.scotch_net ~seed ~config () in
  let src = Testbed.client_source net ~i:0 ~rate:1.0 () in
  (* several flows: they hash to different entry vswitches, so the
     distribution shows both the 1-tunnel (entry = cover) and the full
     3-tunnel relays *)
  for _ = 1 to 8 do
    ignore
      (Source.launch_flow src
         ~spec:{ Flow_gen.packets = flow_packets; payload = 1000; interval = 1.0 /. pkt_rate })
  done;
  Testbed.run_until net ~until:(float_of_int flow_packets /. pkt_rate +. 1.0);
  let samples = Scotch_topo.Host.delay_samples net.Testbed.server in
  List.map
    (fun p -> (p, Scotch_util.Stats.Samples.percentile samples (p /. 100.0) *. 1e6))
    percentiles

let run ?(seed = 42) ?(scale = 1.0) () : Report.figure =
  ignore scale;
  { Report.id = "fig14";
    title = "Extra delay of the Scotch overlay relay (three tunnels + two vswitches)";
    x_label = "percentile";
    y_label = "one-way packet delay (µs)";
    series =
      [ { Report.label = "physical path"; points = run_variant ~seed ~force_overlay:false () };
        { Report.label = "overlay path"; points = run_variant ~seed ~force_overlay:true () } ]
  }
