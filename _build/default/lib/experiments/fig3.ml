(** Fig. 3 — control-plane throughput comparison under an attempted
    DDoS: client flow failure fraction vs attacking flow rate, for the
    HP Procurve, the Pica8 Pronto and Open vSwitch.

    Setup per §3.2 (Fig. 2): one switch at a time; the client launches
    10 new flows/s, the attacker 100–3800 spoofed-source flows/s; a flow
    fails when no packet of it reaches the server.  Expected shape: all
    switches degrade as the attack rate grows; the two hardware switches
    fail far more than Open vSwitch, and the Pica8 is worst. *)

open Scotch_switch
open Scotch_workload

let attack_rates = [ 100.; 500.; 1000.; 1500.; 2000.; 2500.; 3000.; 3800. ]

let client_rate = 10.0

(** One point: failure fraction of client flows at a given attack rate. *)
let run_point ?(seed = 42) ~profile ~attack_rate ~duration () =
  let tb = Testbed.single ~seed ~profile ~client_rate ~attack_rate () in
  Source.start tb.Testbed.client_src;
  Source.start tb.Testbed.attacker_src;
  Scotch_sim.Engine.run ~until:(duration +. 1.0) tb.Testbed.engine;
  Source.failure_fraction tb.Testbed.client_src ~dst:tb.Testbed.server ~since:2.0
    ~until:(duration -. 1.0) ()

let profiles =
  [ ("HP Procurve", Profile.hp_procurve);
    ("Pica8 Pronto", Profile.pica8);
    ("Open vSwitch", Profile.open_vswitch) ]

let run ?(seed = 42) ?(scale = 1.0) () : Report.figure =
  let duration = 20.0 *. scale in
  let series =
    List.map
      (fun (label, profile) ->
        { Report.label;
          points =
            List.map (fun r -> (r, run_point ~seed ~profile ~attack_rate:r ~duration ()))
              attack_rates })
      profiles
  in
  { Report.id = "fig3";
    title = "Physical switches and Open vSwitch control plane throughput comparison";
    x_label = "attack rate (flows/s)";
    y_label = "client flow failure fraction";
    series }
