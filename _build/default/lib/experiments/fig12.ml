(** Large-flow migration (§5.3, reconstructed — truncated in §6).

    Under a control-path attack the overlay carries everything; four
    elephant flows start among the mice.  With migration enabled the
    controller detects them from vswitch flow statistics within one poll
    interval and moves them to physical paths (destination-first rule
    installation); their packets then skip the three-tunnel overlay
    detour.  Reported: mean elephant packet one-way delay per 1-second
    bin, with migration on and off — the step down marks the
    migration. *)

open Scotch_workload
open Scotch_core

let attack_rate = 1500.0
let elephant_count = 4
let elephant_pkt_rate = 2000.0
let elephant_start = 4.0

let run_variant ?(seed = 42) ~migration ~duration () =
  let config = { Config.default with Config.migration_enabled = migration } in
  let net = Testbed.scotch_net ~seed ~config () in
  (* the spoofed flood shares the client's ingress port, so the
     elephants are diverted onto the overlay like everything else on
     that port *)
  let attack =
    let rng = Scotch_util.Rng.split (Scotch_sim.Engine.rng net.Testbed.engine) in
    Source.create net.Testbed.engine ~rng ~host:net.Testbed.clients.(0)
      ~dst:net.Testbed.server ~rate:attack_rate ~spoof_sources:true ()
  in
  let mice =
    Testbed.client_source net ~i:0 ~rate:50.0
      ~spec_of:(Sizes.fixed ~packets:5 ~payload:500 ~interval:0.01)
      ()
  in
  Source.start attack;
  Source.start mice;
  (* elephants: long CBR flows launched once the overlay is active *)
  let elephant_src =
    Testbed.client_source net ~i:0 ~rate:1.0 ()
    (* rate unused; flows launched explicitly *)
  in
  let elephant_ids = Hashtbl.create 8 in
  ignore
    (Scotch_sim.Engine.schedule_at net.Testbed.engine ~at:elephant_start (fun () ->
         for _ = 1 to elephant_count do
           let l =
             Source.launch_flow elephant_src
               ~spec:
                 { Flow_gen.packets = int_of_float (elephant_pkt_rate *. duration);
                   payload = 1000;
                   interval = 1.0 /. elephant_pkt_rate }
           in
           Hashtbl.replace elephant_ids l.Flow_gen.flow_id ()
         done))
  ;
  (* per-1s-bin delay accounting at the server *)
  let nbins = int_of_float duration + 1 in
  let delay_sum = Array.make nbins 0.0 and delay_n = Array.make nbins 0 in
  Scotch_topo.Host.on_receive net.Testbed.server (fun pkt ->
      if Hashtbl.mem elephant_ids pkt.Scotch_packet.Packet.meta.flow_id then begin
        let now = Scotch_sim.Engine.now net.Testbed.engine in
        let bin = int_of_float now in
        if bin < nbins then begin
          delay_sum.(bin) <- delay_sum.(bin) +. (now -. pkt.Scotch_packet.Packet.meta.created);
          delay_n.(bin) <- delay_n.(bin) + 1
        end
      end);
  Testbed.run_until net ~until:duration;
  let points = ref [] in
  for bin = nbins - 1 downto int_of_float elephant_start do
    if delay_n.(bin) > 0 then
      points :=
        (float_of_int bin, delay_sum.(bin) /. float_of_int delay_n.(bin) *. 1e3) :: !points
  done;
  (!points, (Scotch.counters net.Testbed.app).Scotch.migrations_completed)

let run ?(seed = 42) ?(scale = 1.0) () : Report.figure =
  let duration = Stdlib.max 12.0 (20.0 *. scale) in
  let with_mig, migrations = run_variant ~seed ~migration:true ~duration () in
  let without_mig, _ = run_variant ~seed ~migration:false ~duration () in
  { Report.id = "fig12";
    title =
      Printf.sprintf "Large-flow migration off the overlay (%d elephants, %d migrated)"
        elephant_count migrations;
    x_label = "time (s)";
    y_label = "mean elephant packet delay (ms)";
    series =
      [ { Report.label = "migration on"; points = with_mig };
        { Report.label = "migration off"; points = without_mig } ] }
