(** Fig. 4 — SDN switch control-path profiling: with the attacker off
    and the client's new-flow rate swept, the Packet-In rate seen at the
    controller, the rule-insertion rate at the switch and the successful
    flow rate at the server are all (near) identical and saturate
    together — the OFA's Packet-In generation is the bottleneck
    (§3.3). *)

open Scotch_switch
open Scotch_workload
module C = Scotch_controller.Controller

let new_flow_rates = [ 25.; 50.; 75.; 100.; 125.; 150.; 200.; 300.; 500.; 1000. ]

type point = {
  packet_in_rate : float;
  insertion_rate : float;
  successful_rate : float;
}

let run_point ?(seed = 42) ~profile ~rate ~duration () =
  (* the paper's generator spoofs a fresh source per packet ("the client
     generating a new flow per packet"), so every packet is a brand-new
     5-tuple even at high rates *)
  let tb = Testbed.single ~seed ~profile ~client_rate:1.0 ~attack_rate:rate () in
  let warmup = 2.0 in
  Source.start tb.Testbed.attacker_src;
  Scotch_sim.Engine.run ~until:warmup tb.Testbed.engine;
  let pins0 = (C.counters tb.Testbed.ctrl).C.packet_ins in
  let ofa = Switch.ofa tb.Testbed.switch in
  let ins0 = (Scotch_switch.Ofa.counters ofa).Scotch_switch.Ofa.flow_mods_handled in
  let flows0 = Scotch_topo.Host.flows_seen tb.Testbed.server in
  Scotch_sim.Engine.run ~until:duration tb.Testbed.engine;
  let window = duration -. warmup in
  { packet_in_rate =
      float_of_int ((C.counters tb.Testbed.ctrl).C.packet_ins - pins0) /. window;
    insertion_rate =
      float_of_int
        ((Scotch_switch.Ofa.counters ofa).Scotch_switch.Ofa.flow_mods_handled - ins0)
      /. window;
    successful_rate =
      float_of_int (Scotch_topo.Host.flows_seen tb.Testbed.server - flows0) /. window }

let run ?(seed = 42) ?(scale = 1.0) () : Report.figure =
  let duration = 12.0 *. scale in
  let points =
    List.map (fun r -> (r, run_point ~seed ~profile:Profile.pica8 ~rate:r ~duration ()))
      new_flow_rates
  in
  { Report.id = "fig4";
    title = "SDN switch control path profiling (Pica8)";
    x_label = "new flow rate (flows/s)";
    y_label = "rate (per second)";
    series =
      [ { Report.label = "PacketIn msg rate";
          points = List.map (fun (x, p) -> (x, p.packet_in_rate)) points };
        { Report.label = "Rule insertion rate";
          points = List.map (fun (x, p) -> (x, p.insertion_rate)) points };
        { Report.label = "Successful flow rate";
          points = List.map (fun (x, p) -> (x, p.successful_rate)) points } ] }
