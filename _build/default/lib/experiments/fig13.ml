(** Overlay capacity scaling (§6 intro: "the growth in the Scotch
    overlay's capacity with addition of new vswitches into the overlay";
    reconstructed — truncated in §6).

    Offered new-flow load far beyond one vswitch's control capacity is
    spread over pools of 1–8 vswitches by the select-group load
    balancer.  Reported: successful new-flow rate at the servers vs pool
    size — near-linear until the offered load is reached. *)

open Scotch_workload
open Scotch_core

let pool_sizes = [ 1; 2; 3; 4; 6; 8 ]
let offered_load = 16000.0 (* new flows per second, aggregate *)
let num_servers = 4

let run_point ?(seed = 42) ~num_vswitches ~duration () =
  let config =
    { Config.default with
      Config.vswitches_per_switch = num_vswitches;
      (* keep the physical-path scheduler out of the way: this measures
         overlay capacity *)
      activate_pin_rate = 50.0 }
  in
  let net = Testbed.scotch_net ~seed ~config ~num_vswitches ~num_servers () in
  (* one spoofed-source flood per server so deliveries spread over the
     destination covers *)
  let sources =
    Array.map
      (fun server ->
        let rng = Scotch_util.Rng.split (Scotch_sim.Engine.rng net.Testbed.engine) in
        Source.create net.Testbed.engine ~rng ~host:net.Testbed.attacker ~dst:server
          ~rate:(offered_load /. float_of_int num_servers)
          ~spoof_sources:true ())
      net.Testbed.servers
  in
  Array.iter Source.start sources;
  let warmup = 1.5 in
  Testbed.run_until net ~until:warmup;
  let flows0 =
    Array.fold_left (fun acc s -> acc + Scotch_topo.Host.flows_seen s) 0 net.Testbed.servers
  in
  Testbed.run_until net ~until:duration;
  let flows1 =
    Array.fold_left (fun acc s -> acc + Scotch_topo.Host.flows_seen s) 0 net.Testbed.servers
  in
  float_of_int (flows1 - flows0) /. (duration -. warmup)

let run ?(seed = 42) ?(scale = 1.0) () : Report.figure =
  let duration = Stdlib.max 3.0 (5.0 *. scale) in
  let points =
    List.map
      (fun n -> (float_of_int n, run_point ~seed ~num_vswitches:n ~duration ()))
      pool_sizes
  in
  { Report.id = "fig13";
    title =
      Printf.sprintf "Control-plane capacity scales with the vswitch pool (offered %.0f fl/s)"
        offered_load;
    x_label = "number of vswitches";
    y_label = "successful new-flow rate (flows/s)";
    series = [ { Report.label = "Scotch overlay"; points } ] }
