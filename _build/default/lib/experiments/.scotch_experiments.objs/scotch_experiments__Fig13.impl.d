lib/experiments/fig13.ml: Array Config List Printf Report Scotch_core Scotch_sim Scotch_topo Scotch_util Scotch_workload Source Stdlib Testbed
