lib/experiments/testbed.ml: Array Host List Middlebox Printf Profile Rng Scotch_controller Scotch_core Scotch_sim Scotch_switch Scotch_topo Scotch_util Scotch_workload Source Switch Topology
