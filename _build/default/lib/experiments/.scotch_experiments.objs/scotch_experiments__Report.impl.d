lib/experiments/report.ml: List Printf Scotch_util Stdlib Table_printer
