lib/experiments/fig10.ml: Fig9 List Of_action Of_match Of_types Printf Profile Report Scotch_controller Scotch_openflow Scotch_sim Scotch_switch Scotch_topo Scotch_workload Source Switch Testbed
