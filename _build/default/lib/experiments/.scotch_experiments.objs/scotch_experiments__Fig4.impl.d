lib/experiments/fig4.ml: List Profile Report Scotch_controller Scotch_sim Scotch_switch Scotch_topo Scotch_workload Source Switch Testbed
