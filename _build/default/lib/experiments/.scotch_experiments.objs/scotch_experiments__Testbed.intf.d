lib/experiments/testbed.mli: Flow_gen Host Middlebox Profile Scotch_controller Scotch_core Scotch_packet Scotch_sim Scotch_switch Scotch_topo Scotch_util Scotch_workload Source Switch Topology
