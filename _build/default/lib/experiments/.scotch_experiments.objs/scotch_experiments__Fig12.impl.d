lib/experiments/fig12.ml: Array Config Flow_gen Hashtbl Printf Report Scotch Scotch_core Scotch_packet Scotch_sim Scotch_topo Scotch_util Scotch_workload Sizes Source Stdlib Testbed
