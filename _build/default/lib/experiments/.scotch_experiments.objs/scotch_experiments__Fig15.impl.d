lib/experiments/fig15.ml: Array Flow_gen List Printf Report Scotch_topo Scotch_util Scotch_workload Sizes Testbed Tracegen
