lib/experiments/fig11.ml: Config Flow_gen Flow_info_db List Report Scotch Scotch_core Scotch_workload Source Testbed
