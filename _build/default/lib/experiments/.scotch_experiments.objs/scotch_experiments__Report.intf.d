lib/experiments/report.mli: Scotch_util
