lib/experiments/fig3.ml: List Profile Report Scotch_sim Scotch_switch Scotch_workload Source Testbed
