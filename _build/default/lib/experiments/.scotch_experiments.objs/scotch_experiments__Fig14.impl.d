lib/experiments/fig14.ml: Config Flow_gen List Report Scotch_core Scotch_topo Scotch_util Scotch_workload Source Testbed
