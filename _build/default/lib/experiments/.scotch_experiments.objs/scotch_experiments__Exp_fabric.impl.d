lib/experiments/exp_fabric.ml: Array List Ofa Report Scotch_sim Scotch_switch Scotch_workload Source Switch Testbed
