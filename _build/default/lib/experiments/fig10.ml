(** Fig. 10 — interaction of the switch data plane and control path:
    data-path packet loss ratio vs attempted rule-insertion rate, with
    concurrent data traffic at 500, 1000 and 2000 packets/s.

    A forwarding rule for the data traffic is installed proactively;
    the controller then inserts unrelated rules at a constant rate.
    Expected shape (§6.2): low loss at low insertion rates, a sharp
    turning point near 1300 rules/s, loss above 90 % past it, and
    near-identical curves for all three data rates. *)

open Scotch_openflow
open Scotch_switch
open Scotch_workload
module C = Scotch_controller.Controller

let insertion_rates = [ 100.; 200.; 400.; 600.; 800.; 1000.; 1150.; 1300.; 1500.; 2000. ]
let data_rates = [ 500.; 1000.; 2000. ]

let run_point ?(seed = 42) ~profile ~insertion_rate ~data_rate ~duration () =
  let tb = Testbed.single ~seed ~profile ~client_rate:1.0 ~attack_rate:1.0 () in
  (* proactive forwarding rule: client traffic never touches the OFA *)
  (match
     Switch.install_direct tb.Testbed.switch ~table_id:0 ~priority:20
       ~match_:(Of_match.with_ip_dst (Scotch_topo.Host.ip tb.Testbed.server) Of_match.wildcard)
       ~instructions:(Of_action.output (Of_types.Port_no.Physical Testbed.server_port))
       ()
   with
  | Ok () -> ()
  | Error `Table_full -> assert false);
  (* CBR data traffic as one long pre-established flow *)
  let n_packets = int_of_float (data_rate *. duration) in
  ignore
    (Source.launch_flow tb.Testbed.client_src
       ~spec:{ Scotch_workload.Flow_gen.packets = n_packets; payload = 1000;
               interval = 1.0 /. data_rate });
  (* the controller hammers in unrelated rules *)
  let counter = ref 0 in
  Fig9.jittered_rate tb.Testbed.engine
    (Scotch_sim.Engine.rng tb.Testbed.engine) ~rate:insertion_rate (fun () ->
      incr counter;
      C.install tb.Testbed.ctrl tb.Testbed.sw_handle ~table_id:0 ~priority:10
        ~hard_timeout:5.0 ~match_:(Fig9.unique_match !counter)
        ~instructions:(Of_action.output (Of_types.Port_no.Physical 1))
        ());
  Scotch_sim.Engine.run ~until:(duration +. 0.5) tb.Testbed.engine;
  let sent = Source.packets_sent tb.Testbed.client_src in
  let received = Scotch_topo.Host.received_packets tb.Testbed.server in
  if sent = 0 then 0.0 else float_of_int (sent - received) /. float_of_int sent

let run ?(seed = 42) ?(scale = 1.0) () : Report.figure =
  let duration = 10.0 *. scale in
  let series =
    List.map
      (fun data_rate ->
        { Report.label = Printf.sprintf "%.0f pps" data_rate;
          points =
            List.map
              (fun r ->
                (r, run_point ~seed ~profile:Profile.pica8 ~insertion_rate:r ~data_rate
                      ~duration ()))
              insertion_rates })
      data_rates
  in
  { Report.id = "fig10";
    title = "Interaction of the data path and the control path (Pica8)";
    x_label = "attempted insertion rate (rules/s)";
    y_label = "datapath packet loss ratio";
    series }
