(** Figure data: the rows/series each experiment regenerates, printed
    in the same shape the paper's figures report. *)

type series = {
  label : string;
  points : (float * float) list; (** (x, y) *)
}

type figure = {
  id : string; (** "fig3", "fig10", "exp-fabric", ... *)
  title : string;
  x_label : string;
  y_label : string;
  series : series list;
}

(** Look up a series by label; raises [Invalid_argument] when absent. *)
val series_exn : figure -> string -> series

(** y value at a given x; raises when the point is absent. *)
val value_at : series -> float -> float

val last_y : series -> float
val max_y : series -> float
val min_y : series -> float

(** Render as an aligned table: one x column, one column per series
    (blank cells where a series has no point at that x). *)
val to_table : figure -> Scotch_util.Table_printer.t

val print : figure -> unit
