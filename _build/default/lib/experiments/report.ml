(** Figure data: the rows/series each experiment regenerates, printed in
    the same shape the paper reports. *)

open Scotch_util

type series = {
  label : string;
  points : (float * float) list; (* (x, y) *)
}

type figure = {
  id : string;       (* "fig3", "fig10", ... *)
  title : string;
  x_label : string;
  y_label : string;
  series : series list;
}

(** Look up a series by label (tests). *)
let series_exn fig label =
  match List.find_opt (fun s -> s.label = label) fig.series with
  | Some s -> s
  | None -> invalid_arg (Printf.sprintf "Report.series_exn: no series %s in %s" label fig.id)

(** y value at a given x in a series (tests). *)
let value_at s x =
  match List.assoc_opt x s.points with
  | Some y -> y
  | None -> invalid_arg (Printf.sprintf "Report.value_at: no x=%g in %s" x s.label)

let last_y s =
  match List.rev s.points with
  | (_, y) :: _ -> y
  | [] -> invalid_arg "Report.last_y: empty series"

let max_y s = List.fold_left (fun acc (_, y) -> Stdlib.max acc y) neg_infinity s.points
let min_y s = List.fold_left (fun acc (_, y) -> Stdlib.min acc y) infinity s.points

(** Render a figure as an aligned table: x column, one column per
    series.  Series may have different x grids; missing cells print
    blank. *)
let to_table fig =
  let xs =
    List.concat_map (fun s -> List.map fst s.points) fig.series
    |> List.sort_uniq compare
  in
  let tbl = Table_printer.create (fig.x_label :: List.map (fun s -> s.label) fig.series) in
  List.iter
    (fun x ->
      let cells =
        Printf.sprintf "%g" x
        :: List.map
             (fun s ->
               match List.assoc_opt x s.points with
               | Some y -> Printf.sprintf "%.4g" y
               | None -> "")
             fig.series
      in
      Table_printer.add_row tbl cells)
    xs;
  tbl

let print fig =
  Printf.printf "== %s: %s ==\n" fig.id fig.title;
  Printf.printf "   (y: %s)\n" fig.y_label;
  Table_printer.print (to_table fig);
  print_newline ()
