(** Multi-rack fabric experiment: destination-side protection.

    §1's argument for routing new flows entirely over the overlay:
    "If an attacker spoofs packets from multiple sources to a single
    destination, then even if we spread the new flows arriving at the
    first hop hardware switch to multiple vswitches, the switch close
    to the destination will still be overloaded since rules have to be
    inserted there for each new flow.  To alleviate this problem,
    Scotch forwards new flows on the overlay so that new rules are
    initially only inserted at the vswitches and not the hardware
    switches."

    Setup: a leaf-spine fabric; attackers in three racks flood one
    destination host in a fourth rack, a client in yet another position
    keeps talking to the same destination.  Reported, vs aggregate
    attack rate: the client flow failure fraction and — the
    destination-side claim — the rule-install load absorbed by the
    destination's ToR, for Scotch and the plain reactive baseline. *)

open Scotch_workload
open Scotch_switch

let attack_rates = [ 500.; 1000.; 2000.; 4000. ]
let client_rate = 20.0

type point = {
  failure : float;         (* client flow failure fraction *)
  dst_tor_installs : float; (* rules/s absorbed by the destination ToR *)
}

let run_point ?(seed = 42) ~scotch ~attack_rate ~duration () =
  let fb = Testbed.fabric ~seed ~scotch_enabled:scotch () in
  (* destination: first host of rack 3; client: host in rack 0;
     attackers: one host in each of racks 0, 1, 2 *)
  let dst = fb.Testbed.f_hosts.(3).(0) in
  let client = Testbed.fabric_client fb ~src:fb.Testbed.f_hosts.(0).(0) ~dst ~rate:client_rate in
  let attackers =
    List.map
      (fun r ->
        Testbed.fabric_attack fb ~src:fb.Testbed.f_hosts.(r).(1) ~dst
          ~rate:(attack_rate /. 3.0))
      [ 0; 1; 2 ]
  in
  Source.start client;
  List.iter Source.start attackers;
  Scotch_sim.Engine.run ~until:duration fb.Testbed.f_engine;
  let dst_tor = fb.Testbed.f_tors.(3) in
  let installs =
    (Ofa.counters (Switch.ofa dst_tor)).Ofa.flow_mods_handled
  in
  { failure =
      Source.failure_fraction client ~dst ~since:2.0 ~until:(duration -. 1.0) ();
    dst_tor_installs = float_of_int installs /. duration }

let run ?(seed = 42) ?(scale = 1.0) () : Report.figure =
  let duration = 12.0 *. scale in
  let sweep scotch =
    List.map (fun r -> (r, run_point ~seed ~scotch ~attack_rate:r ~duration ())) attack_rates
  in
  let with_scotch = sweep true and baseline = sweep false in
  { Report.id = "exp-fabric";
    title =
      "Multi-rack fabric: the destination-side switch is protected too (rules only at vswitches)";
    x_label = "aggregate attack rate (flows/s)";
    y_label = "fraction / rules-per-second";
    series =
      [ { Report.label = "client failure (Scotch)";
          points = List.map (fun (x, p) -> (x, p.failure)) with_scotch };
        { Report.label = "client failure (baseline)";
          points = List.map (fun (x, p) -> (x, p.failure)) baseline };
        { Report.label = "dst-ToR installs/s (Scotch)";
          points = List.map (fun (x, p) -> (x, p.dst_tor_installs)) with_scotch };
        { Report.label = "dst-ToR installs/s (baseline)";
          points = List.map (fun (x, p) -> (x, p.dst_tor_installs)) baseline } ] }
