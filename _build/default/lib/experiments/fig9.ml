(** Fig. 9 — maximum flow-rule insertion rate at the Pica8 switch.

    Protocol per §6.1: the controller generates all-different flow rules
    at a constant rate with a 10 s timeout and no data traffic; it
    periodically (every 3 s; paper: sufficiently long) queries the
    number of installed rules N_k, and the successful insertion rate is
    estimated as mean(N_k)/T.  Expected shape: loss-free up to
    ~200 rules/s, then increasing loss with the successful rate
    flattening out near 1000 rules/s. *)

open Scotch_openflow
open Scotch_switch
open Scotch_packet
module C = Scotch_controller.Controller

let attempted_rates = [ 50.; 100.; 150.; 200.; 300.; 400.; 600.; 800.; 1000.; 1300.; 1600.; 2000. ]

let rule_timeout = 10.0
let query_interval = 3.0

(** Schedule [f] at a near-constant rate with ±5 % uniform jitter.
    Real controllers and agents are never in perfect lockstep with the
    OFA's service clock; exact rate-matching in a deterministic
    simulator creates tie-order artifacts no physical testbed has. *)
let jittered_rate engine rng ~rate f =
  let rec tick () =
    f ();
    let period = 1.0 /. rate *. (0.95 +. Scotch_util.Rng.float rng 0.1) in
    ignore (Scotch_sim.Engine.schedule engine ~delay:period tick)
  in
  ignore (Scotch_sim.Engine.schedule engine ~delay:(1.0 /. rate) tick)

let unique_match i =
  Of_match.wildcard
  |> Of_match.with_ip_dst (Ipv4_addr.of_int (Ipv4_addr.to_int (Ipv4_addr.make 192 168 0 0) + i))
  |> Of_match.with_ip_proto Headers.Ipv4.proto_udp

(** One point: successful insertion rate at a given attempted rate. *)
let run_point ?(seed = 42) ~profile ~rate ~duration () =
  let engine = Scotch_sim.Engine.create ~seed () in
  let topo = Scotch_topo.Topology.create engine in
  let switch = Switch.create engine ~dpid:1 ~name:"dut" ~profile () in
  Scotch_topo.Topology.add_switch topo switch;
  let ctrl = C.create engine topo in
  let sw = C.connect ctrl switch ~latency:Testbed.control_latency in
  let counter = ref 0 in
  jittered_rate engine (Scotch_sim.Engine.rng engine) ~rate (fun () ->
      incr counter;
      C.install ctrl sw ~table_id:0 ~priority:10 ~hard_timeout:rule_timeout
        ~match_:(unique_match !counter)
        ~instructions:(Of_action.output (Of_types.Port_no.Physical 1))
        ());
  (* Sample installed-rule counts once the table is in steady state.
     Reading happens switch-side (the paper reads them over the control
     channel with a long query interval; past the saturation point the
     channel itself cannot even carry the query, so we instrument the
     switch directly — the estimator is unchanged). *)
  let samples = ref [] in
  let warmup = rule_timeout +. 3.0 in
  let (_ : unit -> unit) =
    Scotch_sim.Engine.every engine ~period:query_interval (fun () ->
        if Scotch_sim.Engine.now engine > warmup then begin
          let n =
            Array.fold_left
              (fun acc table ->
                acc + Flow_table.size table ~now:(Scotch_sim.Engine.now engine))
              0 (Switch.tables switch)
          in
          samples := float_of_int n :: !samples
        end)
  in
  ignore sw;
  Scotch_sim.Engine.run ~until:duration engine;
  match !samples with
  | [] -> 0.0
  | s ->
    let mean = List.fold_left ( +. ) 0.0 s /. float_of_int (List.length s) in
    mean /. rule_timeout

let run ?(seed = 42) ?(scale = 1.0) () : Report.figure =
  let duration = Stdlib.max (rule_timeout +. 10.0) (30.0 *. scale) in
  let points =
    List.map (fun r -> (r, run_point ~seed ~profile:Profile.pica8 ~rate:r ~duration ()))
      attempted_rates
  in
  { Report.id = "fig9";
    title = "Maximum flow rule insertion rate at the Pica8 switch";
    x_label = "attempted insertion rate (rules/s)";
    y_label = "successful insertion rate (rules/s)";
    series =
      [ { Report.label = "Successful insertion rate"; points };
        { Report.label = "Attempted (y=x reference)";
          points = List.map (fun r -> (r, r)) attempted_rates } ] }
