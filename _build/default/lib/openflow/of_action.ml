(** OpenFlow actions and instructions (OpenFlow 1.3 subset).

    Scotch needs: output to physical/tunnel/controller ports, group
    indirection for load balancing, MPLS push/pop with label set (the
    inner ingress-port label of §5.2), GRE key set/strip, and goto-table
    for the two-table miss pipeline. *)

open Of_types

type t =
  | Output of Port_no.t
  | Group of group_id
  | Push_mpls of int            (* push label (combines PUSH_MPLS + SET_FIELD) *)
  | Pop_mpls
  | Push_gre of int32           (* encapsulate with GRE key *)
  | Pop_gre
  | Set_eth_dst of Scotch_packet.Mac.t
  | Set_eth_src of Scotch_packet.Mac.t
  | Dec_ttl
  | Drop                        (* explicit drop (empty action set) *)

(** Instructions attached to a flow entry.  [Apply_actions] executes
    immediately; [Goto_table] continues matching in a later table
    (§5.2: "two flow tables are needed at the physical switch"). *)
type instruction =
  | Apply_actions of t list
  | Goto_table of table_id

type instructions = instruction list

(** Actions contained in a list of instructions, in execution order. *)
let actions_of_instructions instrs =
  List.concat_map (function Apply_actions acts -> acts | Goto_table _ -> []) instrs

(** Next table, if the instructions continue the pipeline. *)
let goto_of_instructions instrs =
  List.find_map (function Goto_table t -> Some t | Apply_actions _ -> None) instrs

(** [output port] as a single-instruction list — the common case. *)
let output port = [ Apply_actions [ Output port ] ]

(** Send to the controller (Packet-In via action). *)
let to_controller = [ Apply_actions [ Output Port_no.Controller ] ]

let drop = [ Apply_actions [ Drop ] ]

let pp fmt = function
  | Output p -> Format.fprintf fmt "output(%a)" Port_no.pp p
  | Group g -> Format.fprintf fmt "group(%d)" g
  | Push_mpls l -> Format.fprintf fmt "push_mpls(%d)" l
  | Pop_mpls -> Format.pp_print_string fmt "pop_mpls"
  | Push_gre k -> Format.fprintf fmt "push_gre(%ld)" k
  | Pop_gre -> Format.pp_print_string fmt "pop_gre"
  | Set_eth_dst m -> Format.fprintf fmt "set_eth_dst(%a)" Scotch_packet.Mac.pp m
  | Set_eth_src m -> Format.fprintf fmt "set_eth_src(%a)" Scotch_packet.Mac.pp m
  | Dec_ttl -> Format.pp_print_string fmt "dec_ttl"
  | Drop -> Format.pp_print_string fmt "drop"

let pp_instruction fmt = function
  | Apply_actions acts ->
    Format.fprintf fmt "apply[%s]" (String.concat ";" (List.map (Format.asprintf "%a" pp) acts))
  | Goto_table t -> Format.fprintf fmt "goto(%d)" t
