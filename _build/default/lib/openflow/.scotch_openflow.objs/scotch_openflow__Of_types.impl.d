lib/openflow/of_types.ml: Format Printf
