lib/openflow/of_types.mli: Format
