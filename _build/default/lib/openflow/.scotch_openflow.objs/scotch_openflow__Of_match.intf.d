lib/openflow/of_match.mli: Flow_key Format Ipv4_addr Packet Scotch_packet
