lib/openflow/of_match.ml: Flow_key Format Headers Int Int32 Ipv4_addr List Option Packet Printf Scotch_packet String
