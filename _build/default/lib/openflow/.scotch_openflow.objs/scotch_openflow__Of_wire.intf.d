lib/openflow/of_wire.mli: Bytes Of_msg
