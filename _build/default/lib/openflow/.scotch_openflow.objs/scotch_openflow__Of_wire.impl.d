lib/openflow/of_wire.ml: Buffer Bytes Fun Int32 Int64 List Of_action Of_match Of_msg Of_types Option Packet_in_reason Port_no Printf Scotch_packet
