lib/openflow/of_msg.mli: Format Of_action Of_match Of_types Packet_in_reason Scotch_packet
