lib/openflow/of_action.mli: Format Of_types Port_no Scotch_packet
