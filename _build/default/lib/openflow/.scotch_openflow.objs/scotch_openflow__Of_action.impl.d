lib/openflow/of_action.ml: Format List Of_types Port_no Scotch_packet String
