(** Core OpenFlow identifiers and constants (OpenFlow 1.3 subset — the
    version the paper's Pica8 switch requires, with multiple flow
    tables and group tables). *)

type datapath_id = int

(** Port numbers: physical/tunnel ports are small positive integers;
    reserved ports follow the OpenFlow 1.3 encoding. *)
module Port_no : sig
  type t =
    | Physical of int
    | In_port      (** send back out the ingress port *)
    | Controller   (** forward to the controller as a Packet-In *)
    | All          (** flood all ports except ingress *)
    | Local
    | Any

  val max_physical : int
  val to_int : t -> int

  (** Raises [Invalid_argument] on reserved-range values with no
      meaning. *)
  val of_int : int -> t

  val equal : t -> t -> bool
  val pp : Format.formatter -> t -> unit
end

type table_id = int
type group_id = int

(** Transaction ids correlate controller requests and switch replies. *)
type xid = int

(** We always send full packets ("forward the entire packet to the
    controller", §4.2), so this is the only buffer id used. *)
val no_buffer : int

(** Opaque controller-chosen tag on flow rules; Scotch uses it to tell
    overlay (green) rules from per-flow physical (red) rules. *)
type cookie = int64

val cookie_none : cookie

module Packet_in_reason : sig
  type t = No_match | Action | Invalid_ttl

  val to_int : t -> int
  val of_int : int -> t
  val pp : Format.formatter -> t -> unit
end
