(** Binary wire codec for the OpenFlow message subset.

    Framing follows OpenFlow 1.3: an 8-byte header (version 0x04, type,
    length, xid) then a type-specific body; matches and actions are
    TLV-encoded.  The guaranteed (and property-tested) invariant is
    [decode (encode m) = m]. *)

exception Parse_error of string

val version : int

(** Render one framed message. *)
val encode : Of_msg.t -> Bytes.t

(** Parse one framed message.  Raises {!Parse_error} on malformed
    input (wrong version, bad length, unknown type, truncation). *)
val decode : Bytes.t -> Of_msg.t
