(** Core OpenFlow identifiers and constants (OpenFlow 1.3 subset — the
    version the paper's Pica8 switch requires, including multiple flow
    tables and group tables). *)

(** Switch datapath identifier. *)
type datapath_id = int

(** Port numbers.  Physical/tunnel ports are small positive integers;
    reserved ports follow the OpenFlow 1.3 encoding. *)
module Port_no = struct
  type t =
    | Physical of int
    | In_port        (* send back out the ingress port *)
    | Controller     (* forward to controller as Packet-In *)
    | All            (* flood all ports except ingress *)
    | Local          (* switch-local stack *)
    | Any            (* wildcard in requests/deletes *)

  let max_physical = 0xFFFFFF00

  let to_int = function
    | Physical p -> p
    | In_port -> 0xFFFFFFF8
    | All -> 0xFFFFFFFC
    | Controller -> 0xFFFFFFFD
    | Local -> 0xFFFFFFFE
    | Any -> 0xFFFFFFFF

  let of_int = function
    | 0xFFFFFFF8 -> In_port
    | 0xFFFFFFFC -> All
    | 0xFFFFFFFD -> Controller
    | 0xFFFFFFFE -> Local
    | 0xFFFFFFFF -> Any
    | p when p >= 0 && p < max_physical -> Physical p
    | p -> invalid_arg (Printf.sprintf "Port_no.of_int: %d" p)

  let equal a b = a = b

  let pp fmt = function
    | Physical p -> Format.fprintf fmt "port:%d" p
    | In_port -> Format.pp_print_string fmt "IN_PORT"
    | Controller -> Format.pp_print_string fmt "CONTROLLER"
    | All -> Format.pp_print_string fmt "ALL"
    | Local -> Format.pp_print_string fmt "LOCAL"
    | Any -> Format.pp_print_string fmt "ANY"
end

(** Flow-table ids: OpenFlow 1.3 pipelines have tables 0..n; Scotch's
    physical-switch pipeline uses table 0 (ingress tagging) and table 1
    (load-balancing group), §5.2. *)
type table_id = int

type group_id = int

(** Transaction ids correlate controller requests and switch replies. *)
type xid = int

(** Buffer ids: we always send full packets (the paper configures
    vswitches to "forward the entire packet to the controller"), so
    [no_buffer] is the only value used. *)
let no_buffer = 0xFFFFFFFF

(** Cookie: opaque controller-chosen id on flow rules; Scotch uses it to
    tag overlay (green) vs per-flow physical (red) rules. *)
type cookie = int64

let cookie_none = 0L

(** Reason codes carried in Packet-In messages. *)
module Packet_in_reason = struct
  type t =
    | No_match     (* table miss *)
    | Action       (* explicit output to CONTROLLER *)
    | Invalid_ttl

  let to_int = function No_match -> 0 | Action -> 1 | Invalid_ttl -> 2

  let of_int = function
    | 0 -> No_match
    | 1 -> Action
    | 2 -> Invalid_ttl
    | n -> invalid_arg (Printf.sprintf "Packet_in_reason.of_int: %d" n)

  let pp fmt t =
    Format.pp_print_string fmt
      (match t with No_match -> "NO_MATCH" | Action -> "ACTION" | Invalid_ttl -> "INVALID_TTL")
end
