(** OpenFlow actions and instructions (OpenFlow 1.3 subset).

    Scotch needs: output to physical/tunnel/controller ports, group
    indirection for load balancing, MPLS push/pop with label set (the
    ingress-port label of §5.2), GRE key push/strip and goto-table for
    the two-table miss pipeline. *)

open Of_types

type t =
  | Output of Port_no.t
  | Group of group_id
  | Push_mpls of int  (** push a label (PUSH_MPLS + SET_FIELD combined) *)
  | Pop_mpls
  | Push_gre of int32
  | Pop_gre
  | Set_eth_dst of Scotch_packet.Mac.t
  | Set_eth_src of Scotch_packet.Mac.t
  | Dec_ttl
  | Drop              (** explicit drop (empty action set) *)

(** Instructions attached to a flow entry: [Apply_actions] executes
    immediately; [Goto_table] continues matching in a later table
    (§5.2: "two flow tables are needed at the physical switch"). *)
type instruction =
  | Apply_actions of t list
  | Goto_table of table_id

type instructions = instruction list

(** Actions contained in an instruction list, in execution order. *)
val actions_of_instructions : instructions -> t list

(** Next table, if the instructions continue the pipeline. *)
val goto_of_instructions : instructions -> table_id option

(** [output port] as a single-instruction list. *)
val output : Port_no.t -> instructions

(** Send to the controller (Packet-In via action). *)
val to_controller : instructions

val drop : instructions
val pp : Format.formatter -> t -> unit
val pp_instruction : Format.formatter -> instruction -> unit
