(** Device performance profiles: the paper's measured control-path
    characteristics (§3.2–3.3, §6.1–6.2) as queueing-model parameters.
    DESIGN.md §3 records how each constant was recovered from the
    (OCR-damaged) paper text and how the pieces combine to reproduce
    Figs. 3/4/9/10. *)

type t = {
  name : string;
  (* OFA service times, seconds per message *)
  packet_in_service : float;   (** generate one Packet-In *)
  flow_mod_service : float;    (** install one rule *)
  packet_out_service : float;  (** execute one Packet-Out *)
  misc_service : float;        (** echo, stats, barrier *)
  ofa_queue_capacity : int;    (** controller-message (FlowMod etc.) queue *)
  pin_queue_capacity : int;    (** outbound Packet-In job queue *)
  (* periodic OFA stall (table maintenance) *)
  housekeeping_period : float;   (** 0 = never *)
  housekeeping_duration : float;
  (* data plane *)
  datapath_pps : float;        (** packet lookups per second *)
  forward_latency : float;     (** per-packet pipeline latency, seconds *)
  flow_table_capacity : int;   (** TCAM size, entries per table *)
  tcam_write_stall : float;    (** datapath stall per accepted write *)
  tcam_reject_stall : float;   (** datapath stall per rejected FlowMod *)
}

(** Pica8 Pronto 3780: 10 GbE data plane, weak management CPU;
    reactive flow setup saturates near 140 flows/s. *)
val pica8 : t

(** HP Procurve 6600: higher OFA throughput than the Pica8 (Fig. 3)
    but an older OpenFlow 1.0 data plane. *)
val hp_procurve : t

(** Open vSwitch on a Xeon host: fast software agent, slower data
    plane. *)
val open_vswitch : t

(** An overlay vswitch: {!open_vswitch} on a lightly loaded host
    (§4.1). *)
val scotch_vswitch : t

val pp : Format.formatter -> t -> unit

(** Maximum sustainable reactive flow-setup rate: one Packet-In, one
    FlowMod and one Packet-Out per flow, minus housekeeping duty. *)
val max_flow_setup_rate : t -> float
