lib/switch/switch.mli: Flow_table Format Group_table Of_action Of_match Of_types Ofa Profile Scotch_openflow Scotch_packet Scotch_sim
