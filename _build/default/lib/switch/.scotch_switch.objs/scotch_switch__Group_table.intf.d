lib/switch/group_table.mli: Of_msg Of_types Scotch_openflow
