lib/switch/profile.mli: Format
