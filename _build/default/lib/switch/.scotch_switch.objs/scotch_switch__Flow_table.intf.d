lib/switch/flow_table.mli: Of_action Of_match Of_msg Of_types Scotch_openflow
