lib/switch/group_table.ml: Hashtbl List Of_msg Of_types Scotch_openflow
