lib/switch/ofa.ml: Float Of_msg Of_types Packet Profile Queue Scotch_openflow Scotch_packet Scotch_sim Scotch_util
