lib/switch/flow_table.ml: Hashtbl Ipv4_addr List Of_action Of_match Of_msg Of_types Packet Scotch_openflow Scotch_packet
