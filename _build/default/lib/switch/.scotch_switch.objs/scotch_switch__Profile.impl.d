lib/switch/profile.ml: Format
