lib/switch/ofa.mli: Of_msg Of_types Packet Profile Scotch_openflow Scotch_packet Scotch_sim
