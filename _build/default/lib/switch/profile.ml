(** Device performance profiles.

    These encode the paper's measured control-path characteristics
    (§3.2–3.3, §6.1–6.2) as queueing-model parameters.  The OCR of the
    paper drops trailing digits; DESIGN.md §3 records how each constant
    was recovered.

    The model (see {!Ofa} and {!Switch}):
    - the OFA is a single server with per-message-class service times and
      a bounded input queue;
    - every [housekeeping_period] seconds the OFA stalls for
      [housekeeping_duration] (table maintenance); queue overflow during
      these stalls is what makes rule insertion lossy above a knee well
      below the raw service rate — reproducing Fig. 9 (loss-free up to
      ~200/s, saturation near 1000/s for Pica8);
    - each accepted TCAM write stalls the forwarding pipeline for
      [tcam_write_stall]; each {e rejected} FlowMod additionally stalls
      it for [tcam_reject_stall] (the agent thrashes while shedding
      load) — together these reproduce Fig. 10's knee at ~1300
      attempted insertions/s with >90 % data-path loss past it. *)

type t = {
  name : string;
  (* OFA service times, seconds per message *)
  packet_in_service : float;   (* generate one Packet-In *)
  flow_mod_service : float;    (* install one rule *)
  packet_out_service : float;  (* execute one Packet-Out *)
  misc_service : float;        (* echo, stats, barrier *)
  ofa_queue_capacity : int;    (* controller-message (FlowMod etc.) queue *)
  pin_queue_capacity : int;    (* outbound Packet-In job queue *)
  (* periodic OFA stall (table maintenance) *)
  housekeeping_period : float;   (* 0 = never *)
  housekeeping_duration : float;
  (* data plane *)
  datapath_pps : float;        (* packet lookups per second *)
  forward_latency : float;     (* per-packet pipeline latency, seconds *)
  flow_table_capacity : int;   (* TCAM size, entries per table *)
  tcam_write_stall : float;    (* datapath stall per accepted write *)
  tcam_reject_stall : float;   (* datapath stall per rejected FlowMod *)
}

(** Pica8 Pronto 3780: 10 GbE data ports, weak management CPU.
    Saturation flow-setup rate ~1/(pin+fmod+pout) ≈ 140 flows/s. *)
let pica8 =
  { name = "pica8-pronto-3780";
    packet_in_service = 1.0 /. 200.0;
    flow_mod_service = 1.0 /. 1000.0;
    packet_out_service = 1.0 /. 1000.0;
    misc_service = 1.0 /. 5000.0;
    ofa_queue_capacity = 10;
    pin_queue_capacity = 100;
    housekeeping_period = 1.0;
    housekeeping_duration = 0.05;
    datapath_pps = 50e6;
    forward_latency = 5e-6;
    flow_table_capacity = 20000;
    tcam_write_stall = 1.0e-5;
    tcam_reject_stall = 2.6e-3 }

(** HP Procurve 6600: higher OFA throughput than the Pica8 (Fig. 3)
    but an older OpenFlow 1.0 data plane (no tunnels/multi-table). *)
let hp_procurve =
  { name = "hp-procurve-6600";
    packet_in_service = 1.0 /. 1000.0;
    flow_mod_service = 1.0 /. 1000.0;
    packet_out_service = 1.0 /. 1000.0;
    misc_service = 1.0 /. 5000.0;
    ofa_queue_capacity = 20;
    pin_queue_capacity = 200;
    housekeeping_period = 1.0;
    housekeeping_duration = 0.02;
    datapath_pps = 30e6;
    forward_latency = 8e-6;
    flow_table_capacity = 1500;
    tcam_write_stall = 1.0e-5;
    tcam_reject_stall = 1.0e-3 }

(** Open vSwitch on a Xeon E5-1650 host: fast software control agent
    (no TCAM, no housekeeping stalls), slower data plane than switch
    ASICs. *)
let open_vswitch =
  { name = "open-vswitch";
    packet_in_service = 1.0 /. 10000.0;
    flow_mod_service = 1.0 /. 20000.0;
    packet_out_service = 1.0 /. 20000.0;
    misc_service = 1.0 /. 50000.0;
    ofa_queue_capacity = 5000;
    pin_queue_capacity = 5000;
    housekeeping_period = 0.0;
    housekeeping_duration = 0.0;
    datapath_pps = 1e6;
    forward_latency = 40e-6;
    flow_table_capacity = 200_000;
    tcam_write_stall = 0.0;
    tcam_reject_stall = 0.0 }

(** A Scotch overlay vswitch: an {!open_vswitch} selected on a lightly
    loaded host (§4.1). *)
let scotch_vswitch = { open_vswitch with name = "scotch-vswitch" }

let pp fmt t = Format.pp_print_string fmt t.name

(** Maximum sustainable reactive flow-setup rate: one Packet-In, one
    FlowMod and one Packet-Out per flow, minus housekeeping duty. *)
let max_flow_setup_rate t =
  let per_flow = t.packet_in_service +. t.flow_mod_service +. t.packet_out_service in
  let duty =
    if t.housekeeping_period <= 0.0 then 1.0
    else 1.0 -. (t.housekeeping_duration /. t.housekeeping_period)
  in
  duty /. per_flow
