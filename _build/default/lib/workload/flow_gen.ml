(** Flow identity allocation and packet construction shared by all
    traffic sources. *)

open Scotch_packet

let next_flow_id = ref 0

(** Fresh globally unique flow id. *)
let fresh_flow_id () =
  incr next_flow_id;
  !next_flow_id

(** Shape of one flow: [packets] datagrams of [payload] bytes, one every
    [interval] seconds. *)
type flow_spec = {
  packets : int;
  payload : int;
  interval : float;
}

(** A single-SYN "new flow" probe — what the Fig. 3/4 clients and the
    hping3 attacker emit (each packet is a new flow to the switch). *)
let syn_spec = { packets = 1; payload = 0; interval = 0.0 }

(** Description of one launched flow, for later success accounting. *)
type launched = {
  flow_id : int;
  key : Flow_key.t;
  started : float;
  spec : flow_spec;
}

(** [packet ~spec ~seq] builds the [seq]-th packet of a flow.  TCP SYN
    for single-packet probe flows, UDP data otherwise. *)
let packet ~flow_id ~created ~src_mac ~dst_mac ~ip_src ~ip_dst ~src_port ~dst_port ~spec ~seq
    () =
  if spec.packets = 1 && spec.payload = 0 then
    Packet.tcp_syn ~flow_id ~created ~src_mac ~dst_mac ~ip_src ~ip_dst ~src_port ~dst_port ()
  else
    Packet.udp_data ~seq_in_flow:seq ~payload_len:spec.payload ~flow_id ~created ~src_mac
      ~dst_mac ~ip_src ~ip_dst ~src_port ~dst_port ()
