(** Flow-size distributions.  "The majority of link capacity is
    consumed by a small fraction of large flows" [1 in the paper]: the
    Pareto and mice/elephants samplers reproduce that shape and drive
    the large-flow migration experiments. *)

open Scotch_util

(** One-packet connection probes (the Fig. 3/4 workload). *)
val probe : Rng.t -> Flow_gen.flow_spec

(** Fixed-shape flows. *)
val fixed : packets:int -> payload:int -> interval:float -> Rng.t -> Flow_gen.flow_spec

(** Pareto-distributed sizes in packets: shape [alpha] (heavier tail
    when smaller), minimum [min_packets], truncated at [max_packets];
    the flow sends [payload]-byte packets at [pkt_rate]/s. *)
val pareto :
  ?alpha:float -> ?min_packets:int -> ?max_packets:int -> ?payload:int -> pkt_rate:float ->
  unit -> Rng.t -> Flow_gen.flow_spec

(** With probability [elephant_fraction] a long high-rate elephant,
    otherwise a short mouse. *)
val mice_and_elephants :
  ?elephant_fraction:float -> ?mouse_packets:int -> ?elephant_packets:int -> ?payload:int ->
  ?mouse_rate:float -> ?elephant_rate:float -> unit -> Rng.t -> Flow_gen.flow_spec
