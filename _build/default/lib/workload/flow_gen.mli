(** Flow identity allocation and packet construction shared by all
    traffic sources. *)

open Scotch_packet

(** Fresh globally unique flow id (bookkeeping identity only — it never
    influences forwarding). *)
val fresh_flow_id : unit -> int

(** Shape of one flow: [packets] datagrams of [payload] bytes, one
    every [interval] seconds. *)
type flow_spec = {
  packets : int;
  payload : int;
  interval : float;
}

(** A single-SYN "new flow" probe — what the Fig. 3/4 clients and the
    hping3 attacker emit. *)
val syn_spec : flow_spec

(** One launched flow, for later success accounting. *)
type launched = {
  flow_id : int;
  key : Flow_key.t;
  started : float;
  spec : flow_spec;
}

(** The [seq]-th packet of a flow: TCP SYN for single-packet probes,
    UDP data otherwise. *)
val packet :
  flow_id:int -> created:float -> src_mac:Mac.t -> dst_mac:Mac.t -> ip_src:Ipv4_addr.t ->
  ip_dst:Ipv4_addr.t -> src_port:int -> dst_port:int -> spec:flow_spec -> seq:int -> unit ->
  Packet.t
