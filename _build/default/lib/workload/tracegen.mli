(** Synthetic trace generation and replay (the Fig. 15-style
    trace-driven experiment): Poisson flow arrivals with heavy-tailed
    sizes, a destination hotspot and an optional flash-crowd window
    multiplying the arrival rate. *)

open Scotch_util

type flow_event = {
  at : float;  (** launch time *)
  src : int;   (** index into the source array *)
  dst : int;   (** index into the destination array *)
  spec : Flow_gen.flow_spec;
}

type params = {
  duration : float;
  base_rate : float;        (** aggregate new flows per second *)
  flash_start : float;      (** set start >= duration to disable *)
  flash_end : float;
  flash_multiplier : float;
  hotspot_fraction : float; (** fraction of flows aimed at destination 0 *)
  num_sources : int;
  num_destinations : int;
  size_of : Rng.t -> Flow_gen.flow_spec;
}

val default_params : params

(** Arrival rate in effect at time [t]. *)
val rate_at : params -> float -> float

(** Generate the trace as a time-sorted event list (thinning a
    non-homogeneous Poisson process). *)
val generate : Rng.t -> params -> flow_event list

(** Total packets a trace will emit. *)
val total_packets : flow_event list -> int

(** Schedule every event: each launches one flow from [sources.(src)]
    toward [destinations.(dst)].  The returned array fills with the
    launched records as simulation time passes each event. *)
val replay :
  Scotch_sim.Engine.t -> flow_event list -> sources:Source.t array ->
  destinations:Scotch_topo.Host.t array -> Flow_gen.launched option array
