(** Synthetic trace generation and replay (the Fig. 15-style
    trace-driven experiment).

    No public trace ships with the paper, so we synthesize one with the
    empirical shape that matters: Poisson flow arrivals with a
    heavy-tailed (Pareto) size distribution, a destination hotspot, and
    an optional {e flash crowd} window during which the arrival rate
    multiplies — the benign overload scenario Scotch targets alongside
    DDoS. *)

open Scotch_util

type flow_event = {
  at : float;            (* launch time *)
  src : int;             (* index into the source-host array *)
  dst : int;             (* index into the destination-host array *)
  spec : Flow_gen.flow_spec;
}

type params = {
  duration : float;
  base_rate : float;          (* aggregate new flows per second *)
  flash_start : float;        (* flash crowd window (set start >= duration to disable) *)
  flash_end : float;
  flash_multiplier : float;
  hotspot_fraction : float;   (* fraction of flows aimed at destination 0 *)
  num_sources : int;
  num_destinations : int;
  size_of : Rng.t -> Flow_gen.flow_spec;
}

let default_params =
  { duration = 120.0;
    base_rate = 100.0;
    flash_start = 60.0;
    flash_end = 90.0;
    flash_multiplier = 40.0;
    hotspot_fraction = 0.7;
    num_sources = 8;
    num_destinations = 4;
    size_of = Sizes.pareto ~pkt_rate:200.0 () }

let rate_at p t =
  if t >= p.flash_start && t < p.flash_end then p.base_rate *. p.flash_multiplier
  else p.base_rate

(** [generate rng p] produces the trace as a time-sorted event list
    (thinning a non-homogeneous Poisson process). *)
let generate rng p =
  let max_rate = Stdlib.max p.base_rate (p.base_rate *. p.flash_multiplier) in
  let rec go t acc =
    let t = t +. Rng.exponential rng ~rate:max_rate in
    if t >= p.duration then List.rev acc
    else if Rng.float rng max_rate <= rate_at p t then begin
      let src = Rng.int rng p.num_sources in
      let dst =
        if Rng.bernoulli rng p.hotspot_fraction then 0
        else 1 + Rng.int rng (Stdlib.max 1 (p.num_destinations - 1))
      in
      let spec = p.size_of rng in
      go t ({ at = t; src; dst; spec } :: acc)
    end
    else go t acc
  in
  go 0.0 []

(** Total packets a trace will emit (workload sanity checks). *)
let total_packets trace =
  List.fold_left (fun acc e -> acc + e.spec.Flow_gen.packets) 0 trace

(** [replay engine trace ~sources ~destinations] schedules every event:
    each launches one flow from [sources.(src)] toward
    [destinations.(dst)].  Returns an array filled with the per-event
    launched records as simulation time passes each event. *)
let replay engine trace ~(sources : Source.t array) ~(destinations : Scotch_topo.Host.t array)
    =
  let launched : Flow_gen.launched option array = Array.make (List.length trace) None in
  List.iteri
    (fun i ev ->
      ignore
        (Scotch_sim.Engine.schedule_at engine ~at:ev.at (fun () ->
             let src = sources.(ev.src) in
             let spec = ev.spec in
             Source.set_destination src ~dst:destinations.(ev.dst);
             launched.(i) <- Some (Source.launch_flow ~spec src))))
    trace;
  launched
