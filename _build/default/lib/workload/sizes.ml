(** Flow-size distributions.

    "Measurement studies have shown that the majority of link capacity
    is consumed by a small fraction of large flows" [1 in the paper] —
    the Pareto mice/elephants mix below reproduces that shape and drives
    the large-flow migration experiments. *)

open Scotch_util

(** One-packet connection probes (Fig. 3/4 workload). *)
let probe : Rng.t -> Flow_gen.flow_spec = fun _ -> Flow_gen.syn_spec

(** Fixed-shape flows. *)
let fixed ~packets ~payload ~interval : Rng.t -> Flow_gen.flow_spec =
 fun _ -> { Flow_gen.packets; payload; interval }

(** Pareto-distributed flow sizes in packets: shape [alpha] (heavier
    tail for smaller alpha), minimum [min_packets], truncated at
    [max_packets].  Packets are [payload] bytes and the flow sends at
    [pkt_rate] packets/second. *)
let pareto ?(alpha = 1.2) ?(min_packets = 2) ?(max_packets = 100_000) ?(payload = 1000)
    ~pkt_rate () : Rng.t -> Flow_gen.flow_spec =
 fun rng ->
  let size =
    Rng.pareto rng ~shape:alpha ~scale:(float_of_int min_packets)
    |> Float.round |> int_of_float
    |> Stdlib.min max_packets
  in
  { Flow_gen.packets = size; payload; interval = 1.0 /. pkt_rate }

(** A mice/elephants mixture: with probability [elephant_fraction] the
    flow is a long high-rate elephant, otherwise a short mouse. *)
let mice_and_elephants ?(elephant_fraction = 0.02) ?(mouse_packets = 5)
    ?(elephant_packets = 20_000) ?(payload = 1000) ?(mouse_rate = 100.0)
    ?(elephant_rate = 2000.0) () : Rng.t -> Flow_gen.flow_spec =
 fun rng ->
  if Rng.bernoulli rng elephant_fraction then
    { Flow_gen.packets = elephant_packets; payload; interval = 1.0 /. elephant_rate }
  else { Flow_gen.packets = mouse_packets; payload; interval = 1.0 /. mouse_rate }
