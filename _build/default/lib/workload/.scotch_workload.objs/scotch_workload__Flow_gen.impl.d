lib/workload/flow_gen.ml: Flow_key Packet Scotch_packet
