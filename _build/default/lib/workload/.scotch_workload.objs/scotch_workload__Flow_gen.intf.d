lib/workload/flow_gen.mli: Flow_key Ipv4_addr Mac Packet Scotch_packet
