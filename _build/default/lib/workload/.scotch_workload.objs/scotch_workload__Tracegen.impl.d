lib/workload/tracegen.ml: Array Flow_gen List Rng Scotch_sim Scotch_topo Scotch_util Sizes Source Stdlib
