lib/workload/tracegen.mli: Flow_gen Rng Scotch_sim Scotch_topo Scotch_util Source
