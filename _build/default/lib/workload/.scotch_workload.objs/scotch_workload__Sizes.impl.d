lib/workload/sizes.ml: Float Flow_gen Rng Scotch_util Stdlib
