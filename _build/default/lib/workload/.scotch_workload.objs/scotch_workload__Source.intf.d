lib/workload/source.mli: Flow_gen Host Scotch_sim Scotch_topo Scotch_util
