lib/workload/sizes.mli: Flow_gen Rng Scotch_util
