lib/workload/source.ml: Flow_gen Flow_key Headers Host Ipv4_addr List Mac Rng Scotch_packet Scotch_sim Scotch_topo Scotch_util
