(** Protocol header records: Ethernet, IPv4, TCP, UDP, and the tunnel
    encapsulations Scotch uses (MPLS labels, GRE keys, VLAN tags).

    The simulator keeps packets structured (no byte-level store on the
    hot path); {!Codec} serializes to and from real wire bytes for
    interoperability-style testing. *)

(** {1 Ethernet} *)

module Ethernet = struct
  type t = {
    src : Mac.t;
    dst : Mac.t;
    ethertype : int; (* as on the wire, after any VLAN tags *)
  }

  let ethertype_ipv4 = 0x0800
  let ethertype_mpls = 0x8847
  let ethertype_vlan = 0x8100
  let ethertype_arp = 0x0806

  let header_bytes = 14

  let make ~src ~dst ~ethertype = { src; dst; ethertype }

  let pp fmt t =
    Format.fprintf fmt "eth{%a->%a type=0x%04x}" Mac.pp t.src Mac.pp t.dst t.ethertype
end

(** {1 IPv4} *)

module Ipv4 = struct
  type t = {
    src : Ipv4_addr.t;
    dst : Ipv4_addr.t;
    proto : int;  (* 6 = TCP, 17 = UDP, 47 = GRE *)
    ttl : int;
    dscp : int;
    ident : int;  (* identification field, used for flow bookkeeping *)
  }

  let proto_tcp = 6
  let proto_udp = 17
  let proto_gre = 47
  let proto_icmp = 1

  let header_bytes = 20

  let make ?(ttl = 64) ?(dscp = 0) ?(ident = 0) ~src ~dst ~proto () =
    { src; dst; proto; ttl; dscp; ident }

  let decrement_ttl t = { t with ttl = t.ttl - 1 }

  let pp fmt t =
    Format.fprintf fmt "ip{%a->%a proto=%d ttl=%d}" Ipv4_addr.pp t.src Ipv4_addr.pp t.dst
      t.proto t.ttl
end

(** {1 TCP} *)

module Tcp = struct
  type flags = { syn : bool; ack : bool; fin : bool; rst : bool }

  type t = {
    src_port : int;
    dst_port : int;
    seq : int;
    ack_no : int;
    flags : flags;
    window : int;
  }

  let header_bytes = 20

  let no_flags = { syn = false; ack = false; fin = false; rst = false }
  let syn_flags = { no_flags with syn = true }

  let make ?(seq = 0) ?(ack_no = 0) ?(flags = no_flags) ?(window = 65535) ~src_port ~dst_port
      () =
    { src_port; dst_port; seq; ack_no; flags; window }

  let flags_to_int f =
    (if f.fin then 0x01 else 0)
    lor (if f.syn then 0x02 else 0)
    lor (if f.rst then 0x04 else 0)
    lor if f.ack then 0x10 else 0

  let flags_of_int i =
    { fin = i land 0x01 <> 0; syn = i land 0x02 <> 0; rst = i land 0x04 <> 0;
      ack = i land 0x10 <> 0 }

  let pp fmt t =
    Format.fprintf fmt "tcp{%d->%d%s}" t.src_port t.dst_port (if t.flags.syn then " SYN" else "")
end

(** {1 UDP} *)

module Udp = struct
  type t = { src_port : int; dst_port : int }

  let header_bytes = 8

  let make ~src_port ~dst_port = { src_port; dst_port }

  let pp fmt t = Format.fprintf fmt "udp{%d->%d}" t.src_port t.dst_port
end

(** {1 Transport-layer sum} *)

module L4 = struct
  type t =
    | Tcp of Tcp.t
    | Udp of Udp.t
    | Other of int (* raw protocol number payloads we do not interpret *)

  let src_port = function
    | Tcp t -> Some t.Tcp.src_port
    | Udp u -> Some u.Udp.src_port
    | Other _ -> None

  let dst_port = function
    | Tcp t -> Some t.Tcp.dst_port
    | Udp u -> Some u.Udp.dst_port
    | Other _ -> None

  let header_bytes = function
    | Tcp _ -> Tcp.header_bytes
    | Udp _ -> Udp.header_bytes
    | Other _ -> 0

  let pp fmt = function
    | Tcp t -> Tcp.pp fmt t
    | Udp u -> Udp.pp fmt u
    | Other p -> Format.fprintf fmt "l4{proto=%d}" p
end

(** {1 Tunnel encapsulations}

    Scotch overlay tunnels may be "configured using any of the available
    tunneling protocols, such as GRE, MPLS, MAC-in-MAC" (§4.1).  We model
    MPLS label stacks (the paper's evaluation uses MPLS tunnels) and GRE
    keys; the inner label / GRE key carries the original ingress port
    (§5.2). *)

module Encap = struct
  type t =
    | Mpls of { label : int }             (* 20-bit label; bottom-of-stack is
                                             computed at serialization time *)
    | Gre of { key : int32 }
    | Vlan of { vid : int }               (* 12-bit VLAN id *)

  let mpls label =
    if label < 0 || label > 0xFFFFF then invalid_arg "Encap.mpls: 20-bit label";
    Mpls { label }

  let gre key = Gre { key }

  let vlan vid =
    if vid < 0 || vid > 0xFFF then invalid_arg "Encap.vlan: 12-bit vid";
    Vlan { vid }

  let header_bytes = function
    | Mpls _ -> 4
    | Gre _ -> 8 (* GRE with key present *)
    | Vlan _ -> 4

  let pp fmt = function
    | Mpls { label } -> Format.fprintf fmt "mpls{%d}" label
    | Gre { key } -> Format.fprintf fmt "gre{%ld}" key
    | Vlan { vid } -> Format.fprintf fmt "vlan{%d}" vid
end
