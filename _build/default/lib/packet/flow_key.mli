(** Canonical flow identity: the 5-tuple the controller keys its Flow
    Info Database on, and that select-group load balancing hashes
    (ECMP-style, §5.1 of the paper). *)

type t = {
  ip_src : Ipv4_addr.t;
  ip_dst : Ipv4_addr.t;
  proto : int;
  l4_src : int; (* 0 when the transport has no ports *)
  l4_dst : int;
}

val make :
  ?l4_src:int -> ?l4_dst:int -> ip_src:Ipv4_addr.t -> ip_dst:Ipv4_addr.t -> proto:int ->
  unit -> t

val equal : t -> t -> bool
val compare : t -> t -> int

(** Non-negative FNV-1a hash over the tuple fields; the select-group
    bucket chooser uses this, so all packets of a flow take the same
    bucket. *)
val hash : t -> int

val to_string : t -> string
val pp : Format.formatter -> t -> unit

module Map : Map.S with type key = t
module Set : Set.S with type elt = t
module Hashtbl : Hashtbl.S with type key = t
