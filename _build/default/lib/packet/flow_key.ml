(** Canonical flow identity: the 5-tuple the OpenFlow controller keys its
    Flow Info Database on, and that select-group load balancing hashes
    (ECMP-style, §5.1). *)

type t = {
  ip_src : Ipv4_addr.t;
  ip_dst : Ipv4_addr.t;
  proto : int;
  l4_src : int; (* 0 when the transport has no ports *)
  l4_dst : int;
}

let make ?(l4_src = 0) ?(l4_dst = 0) ~ip_src ~ip_dst ~proto () =
  { ip_src; ip_dst; proto; l4_src; l4_dst }

let equal (a : t) (b : t) = a = b
let compare (a : t) (b : t) = Stdlib.compare a b

(** FNV-1a over the tuple fields; the select-group bucket chooser uses
    this so that packets of one flow always take the same bucket
    ("packets from the same flow follow the same overlay data path"). *)
let hash (t : t) =
  let fnv_prime = 0x100000001B3L in
  let step h v =
    Int64.mul (Int64.logxor h (Int64.of_int (v land 0xFFFFFFFF))) fnv_prime
  in
  let h = 0xCBF29CE484222325L in
  let h = step h t.ip_src in
  let h = step h t.ip_dst in
  let h = step h t.proto in
  let h = step h t.l4_src in
  let h = step h t.l4_dst in
  (* keep 62 bits so the result is non-negative on 63-bit OCaml ints *)
  Int64.to_int (Int64.shift_right_logical h 2)

let to_string t =
  Printf.sprintf "%s:%d->%s:%d/%d"
    (Ipv4_addr.to_string t.ip_src) t.l4_src (Ipv4_addr.to_string t.ip_dst) t.l4_dst t.proto

let pp fmt t = Format.pp_print_string fmt (to_string t)

module Map = Map.Make (struct
  type nonrec t = t

  let compare = compare
end)

module Set = Set.Make (struct
  type nonrec t = t

  let compare = compare
end)

module Hashtbl = Stdlib.Hashtbl.Make (struct
  type nonrec t = t

  let equal = equal
  let hash = hash
end)
