(** IPv4 addresses as 32-bit values in an [int], plus prefix masks. *)

type t = int

let mask32 = 0xFFFFFFFF

let of_int i : t = i land mask32
let to_int (t : t) = t

(** [make a b c d] is the address [a.b.c.d]. *)
let make a b c d : t =
  let octet x =
    if x < 0 || x > 255 then invalid_arg "Ipv4_addr.make: octet out of range";
    x
  in
  (octet a lsl 24) lor (octet b lsl 16) lor (octet c lsl 8) lor octet d

let of_string s =
  match String.split_on_char '.' s with
  | [ a; b; c; d ] -> make (int_of_string a) (int_of_string b) (int_of_string c) (int_of_string d)
  | _ -> failwith "Ipv4_addr.of_string: expected dotted quad"

let to_string (t : t) =
  Printf.sprintf "%d.%d.%d.%d"
    ((t lsr 24) land 0xFF) ((t lsr 16) land 0xFF) ((t lsr 8) land 0xFF) (t land 0xFF)

let equal (a : t) (b : t) = a = b
let compare (a : t) (b : t) = Stdlib.compare a b
let pp fmt t = Format.pp_print_string fmt (to_string t)

(** [prefix_mask len] is the netmask for a /len prefix (0 <= len <= 32). *)
let prefix_mask len =
  if len < 0 || len > 32 then invalid_arg "Ipv4_addr.prefix_mask";
  if len = 0 then 0 else (mask32 lsl (32 - len)) land mask32

(** [matches ~addr ~value ~mask] tests [value] against [addr] under
    [mask] (1-bits of [mask] must agree). *)
let matches ~addr ~value ~mask = addr land mask = value land mask

(** [of_host_id i] maps host [i] into 10.0.0.0/8 deterministically. *)
let of_host_id i : t = make 10 ((i lsr 16) land 0xFF) ((i lsr 8) land 0xFF) (i land 0xFF)
