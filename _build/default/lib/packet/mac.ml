(** 48-bit Ethernet MAC addresses, stored in the low 48 bits of an [int]. *)

type t = int

let mask = 0xFFFFFFFFFFFF

(** [of_int i] keeps the low 48 bits of [i]. *)
let of_int i : t = i land mask

let to_int (t : t) = t

let broadcast : t = mask

(** [of_string "aa:bb:cc:dd:ee:ff"] parses colon-separated hex octets. *)
let of_string s =
  match String.split_on_char ':' s with
  | [ a; b; c; d; e; f ] ->
    let octet x =
      let v = int_of_string ("0x" ^ x) in
      if v < 0 || v > 0xFF then failwith "Mac.of_string: octet out of range";
      v
    in
    List.fold_left (fun acc x -> (acc lsl 8) lor octet x) 0 [ a; b; c; d; e; f ]
  | _ -> failwith "Mac.of_string: expected six colon-separated octets"

let to_string (t : t) =
  Printf.sprintf "%02x:%02x:%02x:%02x:%02x:%02x"
    ((t lsr 40) land 0xFF) ((t lsr 32) land 0xFF) ((t lsr 24) land 0xFF)
    ((t lsr 16) land 0xFF) ((t lsr 8) land 0xFF) (t land 0xFF)

let equal (a : t) (b : t) = a = b
let compare (a : t) (b : t) = Stdlib.compare a b
let pp fmt t = Format.pp_print_string fmt (to_string t)

(** [of_host_id i] gives host [i] a stable unicast locally-administered
    address. *)
let of_host_id i : t = 0x020000000000 lor (i land 0xFFFFFFFF)
