lib/packet/headers.ml: Format Ipv4_addr Mac
