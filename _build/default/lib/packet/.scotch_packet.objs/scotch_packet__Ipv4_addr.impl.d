lib/packet/ipv4_addr.ml: Format Printf Stdlib String
