lib/packet/mac.ml: Format List Printf Stdlib String
