lib/packet/ipv4_addr.mli: Format
