lib/packet/headers.mli: Format Ipv4_addr Mac
