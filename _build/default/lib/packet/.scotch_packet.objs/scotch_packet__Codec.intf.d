lib/packet/codec.mli: Bytes Packet
