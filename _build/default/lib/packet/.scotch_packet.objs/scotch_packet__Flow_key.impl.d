lib/packet/flow_key.ml: Format Int64 Ipv4_addr Map Printf Set Stdlib
