lib/packet/mac.mli: Format
