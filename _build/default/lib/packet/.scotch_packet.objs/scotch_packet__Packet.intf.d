lib/packet/packet.mli: Encap Ethernet Flow_key Format Headers Ipv4 Ipv4_addr L4 Mac
