lib/packet/codec.ml: Bytes Encap Ethernet Headers Int32 Ipv4 Ipv4_addr L4 List Mac Packet Printf Tcp Udp
