lib/packet/flow_key.mli: Format Hashtbl Ipv4_addr Map Set
