lib/packet/packet.ml: Encap Ethernet Flow_key Format Headers Ipv4 L4 List String Tcp Udp
