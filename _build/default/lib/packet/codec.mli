(** Byte-level serialization of {!Packet.t} to real wire format and
    back.

    The simulator never serializes packets on its hot path, but the
    codec keeps the header model honest: property tests assert that
    [parse (serialize p)] reconstructs every header field, and the byte
    layouts follow the RFCs (Ethernet II, RFC 791 IPv4, RFC 793 TCP,
    RFC 768 UDP, RFC 3032 MPLS, RFC 2890 GRE with key).  Checksums are
    computed on write and ignored on read. *)

exception Parse_error of string

(** RFC 1071 Internet checksum over [len] bytes at [off]. *)
val internet_checksum : Bytes.t -> off:int -> len:int -> int

(** Render a packet as wire bytes.  GRE encapsulations add a synthetic
    outer IPv4 delivery header; MPLS labels stack directly under
    Ethernet; VLAN tags rewrite the Ethernet type chain. *)
val serialize : Packet.t -> Bytes.t

(** Reconstruct a packet from wire bytes, assigning fresh simulation
    metadata.  Raises {!Parse_error} on malformed input. *)
val parse : ?flow_id:int -> ?created:float -> Bytes.t -> Packet.t
