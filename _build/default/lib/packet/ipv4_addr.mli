(** IPv4 addresses as 32-bit values, plus prefix masks. *)

type t = int

val mask32 : int
val of_int : int -> t
val to_int : t -> int

(** [make a b c d] is the address [a.b.c.d]; octets must be 0-255. *)
val make : int -> int -> int -> int -> t

(** Parse a dotted quad.  Raises [Failure] on malformed input. *)
val of_string : string -> t

val to_string : t -> string
val equal : t -> t -> bool
val compare : t -> t -> int
val pp : Format.formatter -> t -> unit

(** [prefix_mask len] is the netmask of a /len prefix (0-32). *)
val prefix_mask : int -> int

(** [matches ~addr ~value ~mask]: do [addr] and [value] agree on the
    1-bits of [mask]? *)
val matches : addr:t -> value:int -> mask:int -> bool

(** [of_host_id i] maps host [i] into 10.0.0.0/8 deterministically. *)
val of_host_id : int -> t
