(** 48-bit Ethernet MAC addresses. *)

type t = int

(** Keep the low 48 bits of an int. *)
val of_int : int -> t

val to_int : t -> int
val broadcast : t

(** Parse ["aa:bb:cc:dd:ee:ff"].  Raises [Failure] on malformed input. *)
val of_string : string -> t

val to_string : t -> string
val equal : t -> t -> bool
val compare : t -> t -> int
val pp : Format.formatter -> t -> unit

(** [of_host_id i] gives host [i] a stable locally-administered unicast
    address. *)
val of_host_id : int -> t
