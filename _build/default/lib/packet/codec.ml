(** Byte-level serialization of {!Packet.t} to real wire format and back.

    The simulator never serializes packets on its hot path, but the codec
    keeps the header model honest: property tests assert that
    [parse (serialize p)] reconstructs every header field, and the byte
    layouts follow the actual RFCs (Ethernet II, RFC 791 IPv4, RFC 793
    TCP, RFC 768 UDP, RFC 3032 MPLS, RFC 2890 GRE with key).  Checksums
    are computed on write and ignored on read (the simulator does not
    corrupt bytes). *)

open Headers

exception Parse_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Parse_error s)) fmt

(** {1 Byte-buffer helpers} *)

let set_u8 b off v = Bytes.set_uint8 b off (v land 0xFF)
let set_u16 b off v = Bytes.set_uint16_be b off (v land 0xFFFF)

let set_u32 b off v =
  Bytes.set_int32_be b off (Int32.of_int (v land 0xFFFFFFFF))

let set_u48 b off v =
  set_u16 b off (v lsr 32);
  set_u32 b (off + 2) (v land 0xFFFFFFFF)

let get_u8 = Bytes.get_uint8
let get_u16 = Bytes.get_uint16_be
let get_u32 b off = Int32.to_int (Bytes.get_int32_be b off) land 0xFFFFFFFF
let get_u48 b off = (get_u16 b off lsl 32) lor get_u32 b (off + 2)

(** RFC 1071 Internet checksum over [len] bytes starting at [off]. *)
let internet_checksum b ~off ~len =
  let sum = ref 0 in
  let i = ref off in
  let stop = off + len in
  while !i + 1 < stop do
    sum := !sum + get_u16 b !i;
    i := !i + 2
  done;
  if !i < stop then sum := !sum + (get_u8 b !i lsl 8);
  while !sum > 0xFFFF do
    sum := (!sum land 0xFFFF) + (!sum lsr 16)
  done;
  lnot !sum land 0xFFFF

(** {1 Serialization} *)

let write_ethernet b off (eth : Ethernet.t) ~ethertype =
  set_u48 b off (Mac.to_int eth.dst);
  set_u48 b (off + 6) (Mac.to_int eth.src);
  set_u16 b (off + 12) ethertype;
  off + 14

let write_mpls b off ~label ~bos =
  (* label:20 | tc:3 | s:1 | ttl:8 *)
  let word = (label lsl 12) lor ((if bos then 1 else 0) lsl 8) lor 64 in
  set_u32 b off word;
  off + 4

let write_gre b off ~key ~inner_ethertype =
  (* flags: key-present bit (0x2000), version 0 *)
  set_u16 b off 0x2000;
  set_u16 b (off + 2) inner_ethertype;
  set_u32 b (off + 4) (Int32.to_int key land 0xFFFFFFFF);
  off + 8

let write_vlan b off ~vid ~inner_ethertype =
  set_u16 b off vid;
  set_u16 b (off + 2) inner_ethertype;
  off + 4

let write_ipv4 b off (ip : Ipv4.t) ~total_len =
  set_u8 b off 0x45;
  set_u8 b (off + 1) (ip.dscp lsl 2);
  set_u16 b (off + 2) total_len;
  set_u16 b (off + 4) ip.ident;
  set_u16 b (off + 6) 0;
  set_u8 b (off + 8) ip.ttl;
  set_u8 b (off + 9) ip.proto;
  set_u16 b (off + 10) 0;
  set_u32 b (off + 12) (Ipv4_addr.to_int ip.src);
  set_u32 b (off + 16) (Ipv4_addr.to_int ip.dst);
  let csum = internet_checksum b ~off ~len:20 in
  set_u16 b (off + 10) csum;
  off + 20

let write_tcp b off (t : Tcp.t) =
  set_u16 b off t.src_port;
  set_u16 b (off + 2) t.dst_port;
  set_u32 b (off + 4) t.seq;
  set_u32 b (off + 8) t.ack_no;
  set_u8 b (off + 12) 0x50 (* data offset = 5 words *);
  set_u8 b (off + 13) (Tcp.flags_to_int t.flags);
  set_u16 b (off + 14) t.window;
  set_u16 b (off + 16) 0 (* checksum: unused in simulation *);
  set_u16 b (off + 18) 0;
  off + 20

let write_udp b off (u : Udp.t) ~payload_len =
  set_u16 b off u.src_port;
  set_u16 b (off + 2) u.dst_port;
  set_u16 b (off + 4) (8 + payload_len);
  set_u16 b (off + 6) 0;
  off + 8

(** Ethertype that must appear before a given encap/IP continuation. *)
let ethertype_for_next ~encaps =
  match encaps with
  | Encap.Mpls _ :: _ -> Ethernet.ethertype_mpls
  | Encap.Vlan _ :: _ -> Ethernet.ethertype_vlan
  | Encap.Gre _ :: _ ->
    (* GRE is carried in IP (proto 47); the Ethernet frame is IPv4. *)
    Ethernet.ethertype_ipv4
  | [] -> Ethernet.ethertype_ipv4

(** [serialize p] renders [p] as wire bytes.  GRE encapsulation adds a
    synthetic outer IPv4 delivery header (tunnel endpoints are not
    modeled as addresses, so we use 0.0.0.0), MPLS labels stack directly
    under Ethernet, VLAN tags rewrite the Ethernet type chain. *)
let serialize (p : Packet.t) =
  let inner_l4_len = L4.header_bytes p.l4 + p.payload_len in
  let inner_ip_len = Ipv4.header_bytes + inner_l4_len in
  (* Compute total size: ethernet + encap headers (+20 for each GRE outer IP) *)
  let encap_extra =
    List.fold_left
      (fun acc e ->
        acc + Encap.header_bytes e + (match e with Encap.Gre _ -> Ipv4.header_bytes | _ -> 0))
      0 p.encaps
  in
  let total = Ethernet.header_bytes + encap_extra + inner_ip_len in
  let b = Bytes.make total '\000' in
  let first_ethertype =
    match p.encaps with
    | [] -> Ethernet.ethertype_ipv4
    | e :: _ -> ethertype_for_next ~encaps:[ e ]
  in
  let off = write_ethernet b 0 p.eth ~ethertype:first_ethertype in
  (* Remaining length under a given encap position *)
  let rec write_encaps off = function
    | [] ->
      let off = write_ipv4 b off p.ip ~total_len:inner_ip_len in
      let off =
        match p.l4 with
        | L4.Tcp t -> write_tcp b off t
        | L4.Udp u -> write_udp b off u ~payload_len:p.payload_len
        | L4.Other _ -> off
      in
      (* payload bytes remain zero *)
      ignore off
    | Encap.Mpls { label } :: rest ->
      let bos = match rest with Encap.Mpls _ :: _ -> false | _ -> true in
      let off = write_mpls b off ~label ~bos in
      write_encaps off rest
    | Encap.Gre { key } :: rest ->
      (* outer delivery IP header carrying GRE *)
      let gre_payload =
        8
        + List.fold_left
            (fun acc e ->
              acc + Encap.header_bytes e
              + (match e with Encap.Gre _ -> Ipv4.header_bytes | _ -> 0))
            0 rest
        + inner_ip_len
      in
      let outer =
        Ipv4.make ~src:(Ipv4_addr.of_int 0) ~dst:(Ipv4_addr.of_int 0) ~proto:Ipv4.proto_gre ()
      in
      let off = write_ipv4 b off outer ~total_len:(Ipv4.header_bytes + gre_payload) in
      let off = write_gre b off ~key ~inner_ethertype:(ethertype_for_next ~encaps:rest) in
      write_encaps off rest
    | Encap.Vlan { vid } :: rest ->
      let off = write_vlan b off ~vid ~inner_ethertype:(ethertype_for_next ~encaps:rest) in
      write_encaps off rest
  in
  write_encaps off p.encaps;
  b

(** {1 Parsing} *)

let parse_tcp b off =
  if Bytes.length b < off + 20 then fail "truncated TCP header";
  L4.Tcp
    { Tcp.src_port = get_u16 b off;
      dst_port = get_u16 b (off + 2);
      seq = get_u32 b (off + 4);
      ack_no = get_u32 b (off + 8);
      flags = Tcp.flags_of_int (get_u8 b (off + 13));
      window = get_u16 b (off + 14) }

let parse_udp b off =
  if Bytes.length b < off + 8 then fail "truncated UDP header";
  L4.Udp { Udp.src_port = get_u16 b off; dst_port = get_u16 b (off + 2) }

let parse_ipv4 b off =
  if Bytes.length b < off + 20 then fail "truncated IPv4 header";
  let vihl = get_u8 b off in
  if vihl lsr 4 <> 4 then fail "not IPv4";
  let ihl = (vihl land 0xF) * 4 in
  let ip =
    Ipv4.make
      ~dscp:(get_u8 b (off + 1) lsr 2)
      ~ident:(get_u16 b (off + 4))
      ~ttl:(get_u8 b (off + 8))
      ~src:(Ipv4_addr.of_int (get_u32 b (off + 12)))
      ~dst:(Ipv4_addr.of_int (get_u32 b (off + 16)))
      ~proto:(get_u8 b (off + 9))
      ()
  in
  (ip, off + ihl, get_u16 b (off + 2))

(** [parse ~flow_id ~created b] reconstructs a {!Packet.t} from wire
    bytes, assigning fresh simulation metadata. *)
let parse ?(flow_id = 0) ?(created = 0.0) b =
  if Bytes.length b < 14 then fail "truncated Ethernet header";
  let eth_dst = Mac.of_int (get_u48 b 0) in
  let eth_src = Mac.of_int (get_u48 b 6) in
  let rec go off ethertype encaps =
    if ethertype = Ethernet.ethertype_vlan then begin
      if Bytes.length b < off + 4 then fail "truncated VLAN tag";
      let vid = get_u16 b off land 0xFFF in
      go (off + 4) (get_u16 b (off + 2)) (Encap.vlan vid :: encaps)
    end
    else if ethertype = Ethernet.ethertype_mpls then begin
      if Bytes.length b < off + 4 then fail "truncated MPLS header";
      let word = get_u32 b off in
      let label = word lsr 12 in
      let bos = (word lsr 8) land 1 = 1 in
      let enc = Encap.Mpls { label } :: encaps in
      (* After bottom-of-stack the payload is IPv4 in our model. *)
      if bos then ip_layer (off + 4) enc else go (off + 4) Ethernet.ethertype_mpls enc
    end
    else if ethertype = Ethernet.ethertype_ipv4 then ip_layer off encaps
    else fail "unsupported ethertype 0x%04x" ethertype
  and ip_layer off encaps =
    let ip, off, _total = parse_ipv4 b off in
    if ip.Ipv4.proto = Ipv4.proto_gre then begin
      if Bytes.length b < off + 8 then fail "truncated GRE header";
      let flags = get_u16 b off in
      if flags land 0x2000 = 0 then fail "GRE without key unsupported";
      let inner_type = get_u16 b (off + 2) in
      let key = Int32.of_int (get_u32 b (off + 4)) in
      go (off + 8) inner_type (Encap.gre key :: encaps)
    end
    else begin
      let l4, l4_len =
        if ip.Ipv4.proto = Ipv4.proto_tcp then (parse_tcp b off, Tcp.header_bytes)
        else if ip.Ipv4.proto = Ipv4.proto_udp then (parse_udp b off, Udp.header_bytes)
        else (L4.Other ip.Ipv4.proto, 0)
      in
      let payload_len = Bytes.length b - off - l4_len in
      if payload_len < 0 then fail "inconsistent lengths";
      let eth = Ethernet.make ~src:eth_src ~dst:eth_dst ~ethertype:Ethernet.ethertype_ipv4 in
      { Packet.eth;
        encaps = List.rev encaps;
        ip;
        l4;
        payload_len;
        meta = Packet.fresh_meta ~flow_id ~created () }
    end
  in
  go 14 (get_u16 b 12) []
