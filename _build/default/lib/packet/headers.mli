(** Protocol header records: Ethernet, IPv4, TCP, UDP, and the tunnel
    encapsulations the Scotch overlay uses (MPLS labels, GRE keys, VLAN
    tags). *)

module Ethernet : sig
  type t = {
    src : Mac.t;
    dst : Mac.t;
    ethertype : int; (* as on the wire, after any VLAN tags *)
  }

  val ethertype_ipv4 : int
  val ethertype_mpls : int
  val ethertype_vlan : int
  val ethertype_arp : int
  val header_bytes : int
  val make : src:Mac.t -> dst:Mac.t -> ethertype:int -> t
  val pp : Format.formatter -> t -> unit
end

module Ipv4 : sig
  type t = {
    src : Ipv4_addr.t;
    dst : Ipv4_addr.t;
    proto : int;
    ttl : int;
    dscp : int;
    ident : int;
  }

  val proto_tcp : int
  val proto_udp : int
  val proto_gre : int
  val proto_icmp : int
  val header_bytes : int

  val make :
    ?ttl:int -> ?dscp:int -> ?ident:int -> src:Ipv4_addr.t -> dst:Ipv4_addr.t -> proto:int ->
    unit -> t

  val decrement_ttl : t -> t
  val pp : Format.formatter -> t -> unit
end

module Tcp : sig
  type flags = { syn : bool; ack : bool; fin : bool; rst : bool }

  type t = {
    src_port : int;
    dst_port : int;
    seq : int;
    ack_no : int;
    flags : flags;
    window : int;
  }

  val header_bytes : int
  val no_flags : flags
  val syn_flags : flags

  val make :
    ?seq:int -> ?ack_no:int -> ?flags:flags -> ?window:int -> src_port:int -> dst_port:int ->
    unit -> t

  val flags_to_int : flags -> int
  val flags_of_int : int -> flags
  val pp : Format.formatter -> t -> unit
end

module Udp : sig
  type t = { src_port : int; dst_port : int }

  val header_bytes : int
  val make : src_port:int -> dst_port:int -> t
  val pp : Format.formatter -> t -> unit
end

(** Transport-layer sum. *)
module L4 : sig
  type t =
    | Tcp of Tcp.t
    | Udp of Udp.t
    | Other of int  (** raw protocol number we do not interpret *)

  val src_port : t -> int option
  val dst_port : t -> int option
  val header_bytes : t -> int
  val pp : Format.formatter -> t -> unit
end

(** Tunnel encapsulations: the Scotch overlay may ride "GRE, MPLS,
    MAC-in-MAC, etc." (§4.1); the inner MPLS label / GRE key carries the
    original ingress port (§5.2). *)
module Encap : sig
  type t =
    | Mpls of { label : int }  (** 20-bit label; bottom-of-stack is computed on the wire *)
    | Gre of { key : int32 }
    | Vlan of { vid : int }    (** 12-bit VLAN id *)

  (** Raises [Invalid_argument] on out-of-range labels/vids. *)
  val mpls : int -> t

  val gre : int32 -> t
  val vlan : int -> t
  val header_bytes : t -> int
  val pp : Format.formatter -> t -> unit
end
