(** Token-bucket rate limiter, used to model finite-rate servers (e.g. an
    OFA that can emit at most [rate] Packet-In messages per second with a
    small burst allowance). *)

type t = {
  rate : float;           (* tokens per second *)
  burst : float;          (* bucket depth *)
  mutable tokens : float;
  mutable last : float;   (* last refill time *)
}

(** [create ~rate ~burst] starts full at time 0. *)
let create ~rate ~burst =
  if rate <= 0.0 then invalid_arg "Token_bucket.create: rate must be positive";
  if burst <= 0.0 then invalid_arg "Token_bucket.create: burst must be positive";
  { rate; burst; tokens = burst; last = 0.0 }

let refill t ~now =
  if now > t.last then begin
    t.tokens <- Stdlib.min t.burst (t.tokens +. ((now -. t.last) *. t.rate));
    t.last <- now
  end

(** [take t ~now] consumes one token if available, returning whether the
    event is admitted. *)
let take t ~now =
  refill t ~now;
  if t.tokens >= 1.0 then begin
    t.tokens <- t.tokens -. 1.0;
    true
  end
  else false

(** [take_n t ~now n] consumes [n] tokens atomically if available. *)
let take_n t ~now n =
  refill t ~now;
  let n = float_of_int n in
  if t.tokens >= n then begin
    t.tokens <- t.tokens -. n;
    true
  end
  else false

(** [available t ~now] is the current token count after refill. *)
let available t ~now =
  refill t ~now;
  t.tokens

let rate t = t.rate
