(** Deterministic pseudo-random number generation (splitmix64).

    All randomness in the simulator flows through a value of type {!t}
    so that every experiment is reproducible bit-for-bit given a seed. *)

type t

(** [create seed] returns a fresh generator.  Two generators created
    with the same seed produce identical streams. *)
val create : int -> t

(** [split t] derives an independent generator from [t], advancing [t].
    Give each traffic source its own stream so adding a source does not
    perturb the others. *)
val split : t -> t

(** 62 uniformly random non-negative bits. *)
val bits : t -> int

(** [int t n] is uniform on [0, n-1].  Raises [Invalid_argument] if
    [n <= 0]. *)
val int : t -> int -> int

(** [float t x] is uniform on [0, x). *)
val float : t -> float -> float

(** Uniform on (0,1), safe as an argument to [log]. *)
val uniform_pos : t -> float

(** [exponential t ~rate] draws from Exp(rate); mean [1/rate]. *)
val exponential : t -> rate:float -> float

(** [pareto t ~shape ~scale] draws from a Pareto distribution with shape
    (alpha) and minimum value [scale] — heavy-tailed for [shape <= 2];
    used for flow sizes (few elephants, many mice). *)
val pareto : t -> shape:float -> scale:float -> float

(** Fair coin. *)
val bool : t -> bool

(** [bernoulli t p] is [true] with probability [p]. *)
val bernoulli : t -> float -> bool

(** [choice t arr] picks a uniform element; raises on empty arrays. *)
val choice : t -> 'a array -> 'a

(** In-place Fisher-Yates shuffle. *)
val shuffle : t -> 'a array -> unit

(** [geometric t p] counts Bernoulli(p) trials until the first success
    (support 1, 2, ...). *)
val geometric : t -> float -> int
