(** Token-bucket rate limiter, used to model finite-rate servers (e.g. a
    data plane that forwards at most [rate] packets per second with a
    bounded burst). *)

type t

(** [create ~rate ~burst] starts full at time 0.  [rate] is tokens per
    second; [burst] the bucket depth.  Raises [Invalid_argument] on
    non-positive arguments. *)
val create : rate:float -> burst:float -> t

(** [take t ~now] consumes one token if available; returns whether the
    event is admitted.  [now] must not move backwards. *)
val take : t -> now:float -> bool

(** [take_n t ~now n] consumes [n] tokens atomically if available. *)
val take_n : t -> now:float -> int -> bool

(** Current token count after refilling up to [now]. *)
val available : t -> now:float -> float

val rate : t -> float
