(** Aligned plain-text table rendering for experiment reports, matching
    the row/series style the paper's figures report. *)

type t

(** [create header] starts a table with the given column names. *)
val create : string list -> t

(** Append one row.  Raises [Invalid_argument] when the arity does not
    match the header. *)
val add_row : t -> string list -> unit

(** Append one row of floats, formatted with [%.4g]. *)
val add_floats : t -> float list -> unit

(** The table as an aligned multi-line string. *)
val render : t -> string

val print : t -> unit
