(** Online statistics: counters, running moments, exact sample sets and
    sliding-window rate meters. *)

(** Plain event counters. *)
module Counter : sig
  type t

  val create : unit -> t
  val incr : t -> unit
  val add : t -> int -> unit
  val value : t -> int
  val reset : t -> unit
end

(** Numerically stable mean/variance over a stream (Welford), plus
    min/max. *)
module Running : sig
  type t

  val create : unit -> t
  val add : t -> float -> unit
  val count : t -> int

  (** [nan] when empty. *)
  val mean : t -> float

  (** Sample variance (n-1 denominator); 0 for fewer than two points. *)
  val variance : t -> float

  val stddev : t -> float
  val min : t -> float
  val max : t -> float
end

(** Stores every sample; supports exact percentiles.  Meant for
    experiment-sized data (up to a few million points). *)
module Samples : sig
  type t

  val create : unit -> t
  val add : t -> float -> unit
  val count : t -> int
  val mean : t -> float

  (** [percentile t p] with [p] in [0,1], linear interpolation between
      closest ranks.  Raises [Invalid_argument] when empty. *)
  val percentile : t -> float -> float

  val median : t -> float
  val to_array : t -> float array
end

(** Counts events within a sliding window; the controller's congestion
    monitor uses this to estimate Packet-In rates (§4.2 of the paper). *)
module Rate_meter : sig
  type t

  (** [create ~window] with [window] in seconds. *)
  val create : window:float -> t

  (** [tick t ~now] records one event at time [now]. *)
  val tick : t -> now:float -> unit

  (** Event rate (per second) over the trailing window. *)
  val rate : t -> now:float -> float

  (** All-time event count (survives window expiry). *)
  val total : t -> int
end
