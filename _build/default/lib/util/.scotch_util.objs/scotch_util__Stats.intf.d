lib/util/stats.mli:
