lib/util/token_bucket.mli:
