lib/util/timeseries.mli:
