lib/util/histogram.ml: Array Stdlib
