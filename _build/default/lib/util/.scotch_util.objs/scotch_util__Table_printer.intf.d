lib/util/table_printer.mli:
