lib/util/table_printer.ml: Array Buffer List Printf Stdlib String
