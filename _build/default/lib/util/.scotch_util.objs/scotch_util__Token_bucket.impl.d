lib/util/token_bucket.ml: Stdlib
