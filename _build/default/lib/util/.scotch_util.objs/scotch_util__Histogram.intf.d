lib/util/histogram.mli:
