lib/util/heap.mli:
