lib/util/stats.ml: Array Float Queue Stdlib
