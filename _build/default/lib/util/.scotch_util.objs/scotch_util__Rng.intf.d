lib/util/rng.mli:
