lib/util/timeseries.ml: Array Buffer List Printf Stdlib
