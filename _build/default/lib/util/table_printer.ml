(** Aligned plain-text table rendering for experiment reports, matching
    the row/series style the paper's figures report. *)

type t = {
  header : string list;
  mutable rows : string list list; (* reversed *)
}

let create header = { header; rows = [] }

let add_row t row =
  if List.length row <> List.length t.header then
    invalid_arg "Table_printer.add_row: arity mismatch";
  t.rows <- row :: t.rows

let add_floats t row = add_row t (List.map (fun v -> Printf.sprintf "%.4g" v) row)

let render t =
  let rows = List.rev t.rows in
  let all = t.header :: rows in
  let ncols = List.length t.header in
  let widths = Array.make ncols 0 in
  List.iter
    (fun row ->
      List.iteri (fun i cell -> widths.(i) <- Stdlib.max widths.(i) (String.length cell)) row)
    all;
  let buf = Buffer.create 256 in
  let pad i cell = cell ^ String.make (widths.(i) - String.length cell) ' ' in
  let emit row =
    Buffer.add_string buf "  ";
    List.iteri
      (fun i cell ->
        Buffer.add_string buf (pad i cell);
        if i < ncols - 1 then Buffer.add_string buf "  ")
      row;
    Buffer.add_char buf '\n'
  in
  emit t.header;
  Buffer.add_string buf "  ";
  Array.iteri
    (fun i w ->
      Buffer.add_string buf (String.make w '-');
      if i < ncols - 1 then Buffer.add_string buf "  ")
    widths;
  Buffer.add_char buf '\n';
  List.iter emit rows;
  Buffer.contents buf

let print t = print_string (render t)
