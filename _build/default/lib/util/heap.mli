(** Array-backed binary min-heap with an explicit comparison, used by
    the event queue and the controller's schedulers. *)

type 'a t

(** [create ~cmp] is an empty heap ordered by [cmp] (minimum first). *)
val create : cmp:('a -> 'a -> int) -> 'a t

val length : 'a t -> int
val is_empty : 'a t -> bool

(** O(log n) insertion. *)
val push : 'a t -> 'a -> unit

(** Minimum element without removing it; O(1). *)
val peek : 'a t -> 'a option

(** Remove and return the minimum element; O(log n). *)
val pop : 'a t -> 'a option

(** Like {!pop} but raises [Invalid_argument] on an empty heap. *)
val pop_exn : 'a t -> 'a

(** All elements, in unspecified order. *)
val to_list : 'a t -> 'a list

(** Remove every element. *)
val clear : 'a t -> unit
