(** Append-only time series of [(time, value)] points, with CSV export.
    Experiments record every reported curve as one of these. *)

type t = {
  name : string;
  mutable times : float array;
  mutable values : float array;
  mutable size : int;
}

let create name = { name; times = [||]; values = [||]; size = 0 }

let name t = t.name

let length t = t.size

let add t ~time ~value =
  let cap = Array.length t.times in
  if t.size = cap then begin
    let ncap = Stdlib.max 64 (cap * 2) in
    let ntimes = Array.make ncap 0.0 and nvalues = Array.make ncap 0.0 in
    Array.blit t.times 0 ntimes 0 t.size;
    Array.blit t.values 0 nvalues 0 t.size;
    t.times <- ntimes;
    t.values <- nvalues
  end;
  t.times.(t.size) <- time;
  t.values.(t.size) <- value;
  t.size <- t.size + 1

let get t i =
  if i < 0 || i >= t.size then invalid_arg "Timeseries.get";
  (t.times.(i), t.values.(i))

let iter t f =
  for i = 0 to t.size - 1 do
    f t.times.(i) t.values.(i)
  done

let to_list t =
  let rec go i acc =
    if i < 0 then acc else go (i - 1) ((t.times.(i), t.values.(i)) :: acc)
  in
  go (t.size - 1) []

(** Last value, or [default] when the series is empty. *)
let last ?(default = 0.0) t = if t.size = 0 then default else t.values.(t.size - 1)

(** Mean of values over the points with time >= [from]. *)
let mean_from t ~from =
  let sum = ref 0.0 and n = ref 0 in
  iter t (fun time v -> if time >= from then begin sum := !sum +. v; incr n end);
  if !n = 0 then nan else !sum /. float_of_int !n

(** [to_csv series] renders several series sharing no time base as CSV
    blocks: one [name] header line then [time,value] rows. *)
let to_csv series =
  let buf = Buffer.create 1024 in
  List.iter
    (fun t ->
      Buffer.add_string buf ("# " ^ t.name ^ "\n");
      iter t (fun time v -> Buffer.add_string buf (Printf.sprintf "%.6f,%.6f\n" time v)))
    series;
  Buffer.contents buf
