(** Deterministic pseudo-random number generation.

    All randomness in the simulator flows through a value of type {!t} so
    that every experiment is reproducible bit-for-bit given a seed.  The
    generator is splitmix64 (Steele et al.), which is fast, has a full
    64-bit period and passes BigCrush; it is more than adequate for
    workload generation. *)

type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

(** [create seed] returns a fresh generator.  Two generators created with
    the same seed produce identical streams. *)
let create seed = { state = Int64.of_int seed }

(** [split t] derives an independent generator from [t], advancing [t].
    Used to give each traffic source its own stream so that adding a
    source does not perturb the others. *)
let split t =
  let s = Int64.add t.state golden_gamma in
  t.state <- s;
  { state = Int64.mul s 0xBF58476D1CE4E5B9L }

let next_int64 t =
  let s = Int64.add t.state golden_gamma in
  t.state <- s;
  let z = s in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

(** [bits t] returns 62 uniformly random non-negative bits as an [int]. *)
let bits t = Int64.to_int (Int64.shift_right_logical (next_int64 t) 2)

(** [int t n] is uniform on [0, n-1].  Raises [Invalid_argument] if
    [n <= 0]. *)
let int t n =
  if n <= 0 then invalid_arg "Rng.int: bound must be positive";
  bits t mod n

(** [float t x] is uniform on [0, x). *)
let float t x =
  let u = Int64.to_float (Int64.shift_right_logical (next_int64 t) 11) in
  u /. 9007199254740992.0 *. x

(** Uniform on [0,1) with strictly positive values, suitable for [log]. *)
let uniform_pos t =
  let rec go () =
    let u = float t 1.0 in
    if u > 0.0 then u else go ()
  in
  go ()

(** [exponential t ~rate] draws from Exp(rate); mean [1/rate]. *)
let exponential t ~rate =
  if rate <= 0.0 then invalid_arg "Rng.exponential: rate must be positive";
  -.log (uniform_pos t) /. rate

(** [pareto t ~shape ~scale] draws from a Pareto distribution with the
    given shape (alpha) and minimum value [scale].  Heavy-tailed for
    [shape <= 2]; used for flow sizes (few elephants, many mice). *)
let pareto t ~shape ~scale =
  if shape <= 0.0 || scale <= 0.0 then invalid_arg "Rng.pareto";
  scale /. (uniform_pos t ** (1.0 /. shape))

(** [bool t] is a fair coin. *)
let bool t = bits t land 1 = 1

(** [bernoulli t p] is [true] with probability [p]. *)
let bernoulli t p = float t 1.0 < p

(** [choice t arr] picks a uniform element of [arr]. *)
let choice t arr =
  if Array.length arr = 0 then invalid_arg "Rng.choice: empty array";
  arr.(int t (Array.length arr))

(** [shuffle t arr] permutes [arr] in place (Fisher-Yates). *)
let shuffle t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done

(** [geometric t p] counts Bernoulli(p) trials until first success
    (support 1, 2, ...). *)
let geometric t p =
  if p <= 0.0 || p > 1.0 then invalid_arg "Rng.geometric";
  if p = 1.0 then 1
  else 1 + int_of_float (log (uniform_pos t) /. log (1.0 -. p))
