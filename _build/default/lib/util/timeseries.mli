(** Append-only time series of [(time, value)] points with CSV export;
    experiments record every reported curve as one of these. *)

type t

val create : string -> t
val name : t -> string
val length : t -> int
val add : t -> time:float -> value:float -> unit

(** [get t i] is the [i]-th point; raises on out-of-range indices. *)
val get : t -> int -> float * float

val iter : t -> (float -> float -> unit) -> unit
val to_list : t -> (float * float) list

(** Last value, or [default] when empty. *)
val last : ?default:float -> t -> float

(** Mean of values at times >= [from]; [nan] when no points qualify. *)
val mean_from : t -> from:float -> float

(** Render several series as CSV blocks (a [# name] header line then
    [time,value] rows per series). *)
val to_csv : t list -> string
