(** Array-backed binary min-heap, polymorphic in the element type with an
    explicit comparison.  Used by the event queue and by the controller's
    internal schedulers. *)

type 'a t = {
  cmp : 'a -> 'a -> int;
  mutable data : 'a array;
  mutable size : int;
}

(** [create ~cmp] is an empty heap ordered by [cmp] (minimum first). *)
let create ~cmp = { cmp; data = [||]; size = 0 }

let length t = t.size

let is_empty t = t.size = 0

let grow t x =
  let cap = Array.length t.data in
  if t.size = cap then begin
    let ncap = if cap = 0 then 16 else cap * 2 in
    let ndata = Array.make ncap x in
    Array.blit t.data 0 ndata 0 t.size;
    t.data <- ndata
  end

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if t.cmp t.data.(i) t.data.(parent) < 0 then begin
      let tmp = t.data.(i) in
      t.data.(i) <- t.data.(parent);
      t.data.(parent) <- tmp;
      sift_up t parent
    end
  end

let rec sift_down t i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < t.size && t.cmp t.data.(l) t.data.(!smallest) < 0 then smallest := l;
  if r < t.size && t.cmp t.data.(r) t.data.(!smallest) < 0 then smallest := r;
  if !smallest <> i then begin
    let tmp = t.data.(i) in
    t.data.(i) <- t.data.(!smallest);
    t.data.(!smallest) <- tmp;
    sift_down t !smallest
  end

(** [push t x] inserts [x]; O(log n). *)
let push t x =
  grow t x;
  t.data.(t.size) <- x;
  t.size <- t.size + 1;
  sift_up t (t.size - 1)

(** [peek t] is the minimum element, or [None] if empty; O(1). *)
let peek t = if t.size = 0 then None else Some t.data.(0)

(** [pop t] removes and returns the minimum element; O(log n). *)
let pop t =
  if t.size = 0 then None
  else begin
    let top = t.data.(0) in
    t.size <- t.size - 1;
    if t.size > 0 then begin
      t.data.(0) <- t.data.(t.size);
      sift_down t 0
    end;
    Some top
  end

(** [pop_exn t] is like {!pop} but raises [Invalid_argument] on empty. *)
let pop_exn t =
  match pop t with
  | Some x -> x
  | None -> invalid_arg "Heap.pop_exn: empty heap"

(** [to_list t] returns the elements in unspecified order. *)
let to_list t =
  let rec go i acc = if i < 0 then acc else go (i - 1) (t.data.(i) :: acc) in
  go (t.size - 1) []

(** [clear t] removes all elements. *)
let clear t = t.size <- 0
