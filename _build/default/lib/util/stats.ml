(** Online statistics: counters, running moments (Welford), windowed rate
    meters and percentile estimation over stored samples. *)

(** {1 Counters} *)

module Counter = struct
  type t = { mutable count : int }

  let create () = { count = 0 }
  let incr t = t.count <- t.count + 1
  let add t n = t.count <- t.count + n
  let value t = t.count
  let reset t = t.count <- 0
end

(** {1 Running moments}

    Numerically stable mean/variance over a stream (Welford's algorithm);
    also tracks min and max. *)

module Running = struct
  type t = {
    mutable n : int;
    mutable mean : float;
    mutable m2 : float;
    mutable min : float;
    mutable max : float;
  }

  let create () = { n = 0; mean = 0.0; m2 = 0.0; min = infinity; max = neg_infinity }

  let add t x =
    t.n <- t.n + 1;
    let delta = x -. t.mean in
    t.mean <- t.mean +. (delta /. float_of_int t.n);
    t.m2 <- t.m2 +. (delta *. (x -. t.mean));
    if x < t.min then t.min <- x;
    if x > t.max then t.max <- x

  let count t = t.n
  let mean t = if t.n = 0 then nan else t.mean
  let variance t = if t.n < 2 then 0.0 else t.m2 /. float_of_int (t.n - 1)
  let stddev t = sqrt (variance t)
  let min t = t.min
  let max t = t.max
end

(** {1 Sample sets}

    Stores every sample; supports exact percentiles.  Meant for
    experiment-sized data (up to a few million points). *)

module Samples = struct
  type t = { mutable data : float array; mutable size : int }

  let create () = { data = [||]; size = 0 }

  let add t x =
    let cap = Array.length t.data in
    if t.size = cap then begin
      let ndata = Array.make (Stdlib.max 64 (cap * 2)) 0.0 in
      Array.blit t.data 0 ndata 0 t.size;
      t.data <- ndata
    end;
    t.data.(t.size) <- x;
    t.size <- t.size + 1

  let count t = t.size

  let mean t =
    if t.size = 0 then nan
    else begin
      let s = ref 0.0 in
      for i = 0 to t.size - 1 do s := !s +. t.data.(i) done;
      !s /. float_of_int t.size
    end

  (** [percentile t p] with [p] in [0,1], linear interpolation between
      closest ranks.  Raises [Invalid_argument] on an empty set. *)
  let percentile t p =
    if t.size = 0 then invalid_arg "Samples.percentile: empty";
    if p < 0.0 || p > 1.0 then invalid_arg "Samples.percentile: p out of range";
    let sorted = Array.sub t.data 0 t.size in
    Array.sort compare sorted;
    let rank = p *. float_of_int (t.size - 1) in
    let lo = int_of_float (Float.floor rank) in
    let hi = int_of_float (Float.ceil rank) in
    if lo = hi then sorted.(lo)
    else begin
      let frac = rank -. float_of_int lo in
      (sorted.(lo) *. (1.0 -. frac)) +. (sorted.(hi) *. frac)
    end

  let median t = percentile t 0.5

  let to_array t = Array.sub t.data 0 t.size
end

(** {1 Windowed rate meter}

    Counts events within a sliding window of fixed duration; [rate] is
    events per second over the window.  The controller's congestion
    monitor uses this to estimate Packet-In rates (§4.2 of the paper). *)

module Rate_meter = struct
  type t = {
    window : float;
    events : float Queue.t;
    mutable total : int;
  }

  let create ~window =
    if window <= 0.0 then invalid_arg "Rate_meter.create: window must be positive";
    { window; events = Queue.create (); total = 0 }

  let expire t ~now =
    let cutoff = now -. t.window in
    let rec go () =
      match Queue.peek_opt t.events with
      | Some ts when ts <= cutoff ->
        ignore (Queue.pop t.events);
        go ()
      | _ -> ()
    in
    go ()

  (** [tick t ~now] records one event at time [now]. *)
  let tick t ~now =
    expire t ~now;
    Queue.push now t.events;
    t.total <- t.total + 1

  (** [rate t ~now] is the event rate (per second) over the last window. *)
  let rate t ~now =
    expire t ~now;
    float_of_int (Queue.length t.events) /. t.window

  (** [total t] is the all-time event count. *)
  let total t = t.total
end
