(** End hosts: traffic sources and sinks.

    A host has one uplink into the network (its access switch) and may
    additionally be the endpoint of Scotch delivery tunnels (modeling
    the hypervisor host-vswitch of §4.1, which strips the tunnel header
    and hands the packet to the destination VM).  Hosts record per-flow
    reception so experiments can compute flow-failure fractions and
    completion times. *)

open Scotch_packet

type flow_record = {
  mutable packets : int;
  mutable bytes : int;
  mutable first_seen : float;
  mutable last_seen : float;
  mutable delay_sum : float; (* sum of one-way packet delays *)
}

type t = {
  engine : Scotch_sim.Engine.t;
  id : int;
  name : string;
  mac : Mac.t;
  ip : Ipv4_addr.t;
  mutable uplink : Scotch_sim.Link.t option;
  flows : (int, flow_record) Hashtbl.t; (* by packet flow_id *)
  mutable received_packets : int;
  mutable received_bytes : int;
  mutable on_receive : Packet.t -> unit;
  delays : Scotch_util.Stats.Samples.t; (* one-way packet delays *)
}

let create engine ~id ~name =
  { engine; id; name; mac = Mac.of_host_id id; ip = Ipv4_addr.of_host_id id; uplink = None;
    flows = Hashtbl.create 64; received_packets = 0; received_bytes = 0;
    on_receive = (fun _ -> ()); delays = Scotch_util.Stats.Samples.create () }

let set_uplink t link = t.uplink <- Some link

(** [send t pkt] transmits on the host's uplink. *)
let send t pkt =
  match t.uplink with
  | None -> invalid_arg (t.name ^ ": host has no uplink")
  | Some link -> Scotch_sim.Link.send link pkt

(** [deliver t pkt] is called by the network when a packet reaches this
    host (directly or via a delivery tunnel).  All remaining
    encapsulations are stripped, reception is recorded. *)
let deliver t pkt =
  let rec strip pkt =
    match Packet.pop_encap pkt with None -> pkt | Some (_, pkt') -> strip pkt'
  in
  let pkt = strip pkt in
  let now = Scotch_sim.Engine.now t.engine in
  t.received_packets <- t.received_packets + 1;
  t.received_bytes <- t.received_bytes + Packet.size pkt;
  Scotch_util.Stats.Samples.add t.delays (now -. pkt.Packet.meta.created);
  let fid = pkt.Packet.meta.flow_id in
  (match Hashtbl.find_opt t.flows fid with
  | Some r ->
    r.packets <- r.packets + 1;
    r.bytes <- r.bytes + Packet.size pkt;
    r.last_seen <- now;
    r.delay_sum <- r.delay_sum +. (now -. pkt.Packet.meta.created)
  | None ->
    Hashtbl.replace t.flows fid
      { packets = 1; bytes = Packet.size pkt; first_seen = now; last_seen = now;
        delay_sum = now -. pkt.Packet.meta.created });
  t.on_receive pkt

let id t = t.id
let name t = t.name
let mac t = t.mac
let ip t = t.ip
let received_packets t = t.received_packets
let received_bytes t = t.received_bytes

(** Number of distinct flows from which at least one packet arrived. *)
let flows_seen t = Hashtbl.length t.flows

let flow_record t flow_id = Hashtbl.find_opt t.flows flow_id

(** One-way delay samples of every delivered packet. *)
let delay_samples t = t.delays

(** Register a callback invoked on each delivered (decapsulated) packet. *)
let on_receive t f = t.on_receive <- f

let pp fmt t = Format.fprintf fmt "host{%s %a}" t.name Ipv4_addr.pp t.ip
