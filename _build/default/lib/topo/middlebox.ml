(** Stateful middleboxes (§5.4).

    A middlebox sits between an upstream switch S_U and a downstream
    switch S_D.  It is {e stateful}: the first packet of a flow
    establishes state; a mid-flow packet arriving with no established
    state is rejected ("the new middlebox may either reject the flow or
    handle the flow differently due to lack of pre-established context").
    This is exactly the failure Scotch's policy-consistency design must
    avoid, and the counter [state_violations] is how tests observe it.

    The middlebox also requires packets to arrive {e decapsulated}
    ("the middlebox sees the original packet without the tunnel
    header"); an encapsulated arrival is counted as a violation and
    dropped. *)

open Scotch_packet

type kind = Firewall | Load_balancer | Ids

type t = {
  engine : Scotch_sim.Engine.t;
  name : string;
  kind : kind;
  latency : float; (* per-packet processing delay *)
  state : unit Flow_key.Hashtbl.t;
  mutable out : Scotch_sim.Link.t option; (* toward S_D *)
  mutable processed : int;
  mutable state_violations : int;
  mutable encap_violations : int;
  mutable blocked : Flow_key.t -> bool; (* firewall policy *)
}

let create engine ~name ?(kind = Firewall) ?(latency = 50e-6) () =
  { engine; name; kind; latency; state = Flow_key.Hashtbl.create 256; out = None;
    processed = 0; state_violations = 0; encap_violations = 0; blocked = (fun _ -> false) }

(** Set the link toward the downstream switch S_D. *)
let connect_out t link = t.out <- Some link

(** Install a blocking predicate (e.g. drop flows from an attacker
    prefix) — how "the security tools will hopefully kick in and tame
    the attacks" plugs in. *)
let set_policy t blocked = t.blocked <- blocked

(** [receive t pkt] processes one packet from S_U. *)
let receive t pkt =
  if Packet.is_encapsulated pkt then begin
    t.encap_violations <- t.encap_violations + 1
  end
  else begin
    let key = Packet.flow_key pkt in
    if t.blocked key then ()
    else begin
      let has_state = Flow_key.Hashtbl.mem t.state key in
      if (not has_state) && pkt.Packet.meta.seq_in_flow > 0 then
        (* mid-connection packet without establishment: reject *)
        t.state_violations <- t.state_violations + 1
      else begin
        if not has_state then Flow_key.Hashtbl.replace t.state key ();
        t.processed <- t.processed + 1;
        match t.out with
        | None -> ()
        | Some link ->
          ignore
            (Scotch_sim.Engine.schedule t.engine ~delay:t.latency (fun () ->
                 Scotch_sim.Link.send link pkt))
      end
    end
  end

let name t = t.name
let kind t = t.kind
let processed t = t.processed
let state_violations t = t.state_violations
let encap_violations t = t.encap_violations
let flows_tracked t = Flow_key.Hashtbl.length t.state
