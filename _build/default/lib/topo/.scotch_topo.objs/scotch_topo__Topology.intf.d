lib/topo/topology.mli: Host Middlebox Of_types Scotch_openflow Scotch_packet Scotch_sim Scotch_switch Switch
