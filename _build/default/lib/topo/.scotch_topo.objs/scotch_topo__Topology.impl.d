lib/topo/topology.ml: Hashtbl Host Ipv4_addr List Middlebox Of_types Printf Queue Scotch_openflow Scotch_packet Scotch_sim Scotch_switch Switch
