lib/topo/host.mli: Format Ipv4_addr Mac Packet Scotch_packet Scotch_sim Scotch_util
