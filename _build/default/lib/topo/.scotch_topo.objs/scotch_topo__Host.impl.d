lib/topo/host.ml: Format Hashtbl Ipv4_addr Mac Packet Scotch_packet Scotch_sim Scotch_util
