lib/topo/middlebox.mli: Flow_key Packet Scotch_packet Scotch_sim
