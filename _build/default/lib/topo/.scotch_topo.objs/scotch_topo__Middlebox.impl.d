lib/topo/middlebox.ml: Flow_key Packet Scotch_packet Scotch_sim
