(** End hosts: traffic sources and sinks.

    A host has one uplink into the network and may additionally be the
    endpoint of Scotch delivery tunnels (modeling the hypervisor
    host-vswitch of §4.1, which strips the tunnel header and hands the
    packet to the destination VM).  Hosts record per-flow reception so
    experiments can compute flow-failure fractions and completion
    times. *)

open Scotch_packet

type flow_record = {
  mutable packets : int;
  mutable bytes : int;
  mutable first_seen : float;
  mutable last_seen : float;
  mutable delay_sum : float; (** sum of one-way packet delays *)
}

type t

(** Hosts get stable addresses derived from [id] ({!Mac.of_host_id},
    {!Ipv4_addr.of_host_id}). *)
val create : Scotch_sim.Engine.t -> id:int -> name:string -> t

val set_uplink : t -> Scotch_sim.Link.t -> unit

(** Transmit on the uplink.  Raises [Invalid_argument] when the host
    has none. *)
val send : t -> Packet.t -> unit

(** Called by the network when a packet reaches this host (directly or
    via a delivery tunnel): strips all encapsulations and records the
    reception. *)
val deliver : t -> Packet.t -> unit

val id : t -> int
val name : t -> string
val mac : t -> Mac.t
val ip : t -> Ipv4_addr.t
val received_packets : t -> int
val received_bytes : t -> int

(** Number of distinct flows with at least one delivered packet. *)
val flows_seen : t -> int

val flow_record : t -> int -> flow_record option

(** One-way delay samples of every delivered packet. *)
val delay_samples : t -> Scotch_util.Stats.Samples.t

(** Register a callback invoked on each delivered (decapsulated)
    packet. *)
val on_receive : t -> (Packet.t -> unit) -> unit

val pp : Format.formatter -> t -> unit
