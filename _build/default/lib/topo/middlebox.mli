(** Stateful middleboxes (§5.4 of the paper).

    A middlebox sits between an upstream switch S_U and a downstream
    switch S_D.  It is {e stateful}: the first packet of a flow
    establishes state; a mid-flow packet with no established state is
    rejected — exactly the failure Scotch's policy-consistency design
    must avoid; [state_violations] is how tests observe it.  Packets
    must arrive {e decapsulated} ("the middlebox sees the original
    packet without the tunnel header"); encapsulated arrivals are
    counted and dropped. *)

open Scotch_packet

type kind = Firewall | Load_balancer | Ids

type t

val create :
  Scotch_sim.Engine.t -> name:string -> ?kind:kind -> ?latency:float -> unit -> t

(** Set the link toward the downstream switch S_D. *)
val connect_out : t -> Scotch_sim.Link.t -> unit

(** Install a blocking predicate — how "the security tools will
    hopefully kick in and tame the attacks" plugs in. *)
val set_policy : t -> (Flow_key.t -> bool) -> unit

(** Process one packet from S_U. *)
val receive : t -> Packet.t -> unit

val name : t -> string
val kind : t -> kind
val processed : t -> int
val state_violations : t -> int
val encap_violations : t -> int
val flows_tracked : t -> int
